package cluster

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/obs"
)

// This file is the cluster-level arbiter: where cluster.Pool models the
// machines below ONE topology's control loop, Scheduler puts N supervised
// topologies on one shared pool — the setting the paper's §V evaluation
// actually runs in (several applications coexisting on a Storm cluster,
// with the Appendix-B negotiator brokering machines between them).
//
// Each topology registers as a tenant and receives a lease (*Tenant) that
// speaks the same Kmax/Rebalance/Resize protocol its supervisor already
// uses against a private pool — so a loop.Supervisor does not know whether
// it owns machines or merely rents slots. A Resize is a *request*: the
// scheduler grants what weighted max-min fairness allows, growing or
// shrinking the machine pool underneath as aggregate demand moves, and —
// when a higher-priority tenant is violating its Tmax and the pool is
// maxed out — preempting slots from lower-priority tenants, guarded by the
// Appendix-B cost/benefit test on the tenants' reported marginal utilities.

// ErrTenantReleased is returned by lease operations after Release.
var ErrTenantReleased = errors.New("cluster: tenant lease released")

// Clock abstracts time for the scheduler's decision history; virtual-time
// drivers (the experiments) inject their own.
type Clock interface {
	Now() time.Time
}

type schedWallClock struct{}

func (schedWallClock) Now() time.Time { return time.Now() }

// TenantReport is a tenant's latest utility self-assessment, pushed by its
// supervisor every measurement round. The two marginal rates are in the
// Equation (3) *numerator* units — sojourn-seconds per second, i.e. tuples
// in flight by Little's law — which, unlike per-tuple E[T], are directly
// comparable across topologies with different arrival rates. They are what
// core.Model.GrowBenefit and ShrinkCost compute.
type TenantReport struct {
	// Lambda0 is the tenant's measured external arrival rate (tuples/s);
	// the preemption guard uses it to price transition pauses in tuples
	// disturbed.
	Lambda0 float64
	// Violating reports whether the tenant currently exceeds its Tmax
	// target. Only violating tenants may trigger preemption.
	Violating bool
	// GrowBenefit is the marginal gain of one more slot (sojourn-sec/sec).
	GrowBenefit float64
	// ShrinkCost is the marginal damage of losing one slot; +Inf marks the
	// tenant non-preemptible (at its minimum stable allocation).
	ShrinkCost float64
	// ShedFraction is the share of the tenant's *offered* external load its
	// ingest admission controller is currently dropping (0 when it has no
	// ingest tier or admits everything). A shedding tenant is failing its
	// demand by construction, so its supervisor also reports Violating —
	// the grant it holds cannot cover the load clients are offering.
	ShedFraction float64
}

// TenantConfig registers one topology with the scheduler.
type TenantConfig struct {
	// Name identifies the tenant in grants and history (required, unique).
	Name string
	// Weight sets the tenant's max-min share; zero defaults to 1.
	Weight float64
	// Priority orders preemption: a violating tenant may take slots only
	// from strictly lower-priority tenants.
	Priority int
	// MinSlots is the preemption floor: arbitration never takes the
	// tenant's grant below it involuntarily. Size it at least to the
	// topology's minimum stable allocation plus one slot per operator, or
	// a preempted tenant can be pushed into an unstable configuration.
	MinSlots int
	// InitialSlots is the grant the tenant starts with; Register fails
	// with ErrNoCapacity if the pool cannot cover it alongside the
	// existing tenants' grants.
	InitialSlots int
}

func (c TenantConfig) validate() error {
	if c.Name == "" {
		return errors.New("cluster: tenant name required")
	}
	if c.Weight < 0 || c.MinSlots < 0 || c.InitialSlots < 0 {
		return errors.New("cluster: negative tenant parameters")
	}
	return nil
}

// SchedulerConfig assembles a scheduler.
type SchedulerConfig struct {
	// Pool is the machine pool the scheduler takes ownership of
	// (required). Nothing else may resize it afterwards; the scheduler
	// subscribes to the pool's machine churn and re-arbitrates out of band
	// when a machine fails, recovers or is flagged a straggler.
	Pool *Pool
	// CostWindow is the Appendix-B amortization horizon: a preemption must
	// recoup its transition pauses within this span of predicted benefit
	// (default 60s).
	CostWindow time.Duration
	// ReplaceOnFailure returns a crashed machine to the provider the
	// moment it fails, freeing its place under the MaxMachines cap so the
	// same arbitration can negotiate a fresh replacement machine (paying
	// the cold-start pause). When false, the wreck occupies the cap until
	// Recover and the tenants ride out the outage on shrunken grants.
	ReplaceOnFailure bool
	// MaxHistory caps the retained decision history (default 256).
	MaxHistory int
	// Clock defaults to the wall clock.
	Clock Clock
	// DecisionLog, when set, receives every arbitration outcome as a
	// structured record — preemptions carry their full Appendix-B verdict
	// inputs (claimant benefit, victim cost, both arrival rates, the
	// charged pause). Nil disables emission at the cost of one branch.
	DecisionLog *obs.Log
}

// SchedulerEvent is one arbitration outcome that changed a grant or the
// pool, with its modeled transition cost — the cluster-wide decision
// history the operators read.
type SchedulerEvent struct {
	// At is the scheduler clock time of the event.
	At time.Time
	// Kind is "register", "grant", "shrink" (voluntary), "preempt"
	// (involuntary), "slots-lost" (involuntary, machine failure),
	// "release" (tenant gone), "pool" (negotiated machine change),
	// "priority" (a tenant's rank changed) or a machine lifecycle kind
	// ("machine-fail", "machine-recover", "straggler", "straggler-clear").
	Kind string
	// Tenant names the affected tenant ("" for pool events).
	Tenant string
	// From and To bracket the tenant's slot grant (or, for pool events,
	// the machine count).
	From, To int
	// Pause is the modeled service disruption charged for the change.
	Pause time.Duration
	// Detail is a human-readable justification.
	Detail string
}

// String renders one history line.
func (e SchedulerEvent) String() string {
	who := e.Tenant
	if who == "" {
		who = "(pool)"
	}
	return fmt.Sprintf("%-8s %-12s %d -> %d pause=%.1fs %s",
		e.Kind, who, e.From, e.To, e.Pause.Seconds(), e.Detail)
}

// TenantState is one tenant's row in a State snapshot.
type TenantState struct {
	Name                                string
	Weight                              float64
	Priority, MinSlots, Demand, Granted int
	// Lost is the cumulative number of slots machine failures have taken
	// from this tenant's grant.
	Lost int
}

// MachineUse is one live machine's row in a placement snapshot: how its
// slots are split between the reserved share and tenant leases.
type MachineUse struct {
	// ID is the machine's pool identity.
	ID int
	// Straggler reports the degraded-machine flag; stragglers are filled
	// last, so they hold slots only when the healthy machines are full.
	Straggler bool
	// Slots is the machine's slot capacity; Reserved and Leased are the
	// slots placed on it (Reserved + Leased <= Slots always holds).
	Slots, Reserved, Leased int
}

// SchedulerState is an atomic snapshot of the arbitration state, for
// dashboards and invariant-checking tests.
type SchedulerState struct {
	// Machines and Capacity describe the pool under the grants (live
	// machines only — failed ones offer no capacity).
	Machines, Capacity int
	// Leased is the total of all grants; after every arbitration
	// Leased <= Capacity holds (no slot is ever double-leased). One
	// unavoidable transient exists: between a machine crash and the
	// scheduler's out-of-band re-arbitration — a window of one callback
	// dispatch — a snapshot can catch the pre-crash grants against the
	// post-crash capacity, which is the physically true state of a
	// cluster at the instant slots die.
	Leased int
	// Tenants lists every registered tenant in registration order.
	Tenants []TenantState
	// Placement maps the grants onto live machines, one row per machine in
	// fill order (healthy before stragglers).
	Placement []MachineUse
}

// Scheduler arbitrates one machine pool among N tenant topologies. Safe
// for concurrent use: every lease operation serializes on the scheduler.
type Scheduler struct {
	cfg   SchedulerConfig
	clock Clock

	mu        sync.Mutex
	tenants   []*Tenant      // registration order; tie-break for fairness
	preempts  map[string]int // claimant -> slots preempted on its behalf, in force
	placement []MachineUse   // per-machine slot use, rebuilt each arbitration
	history   []SchedulerEvent
	histStart int

	// Arbitration scratch, reused call to call (guarded by mu) so the
	// per-request decision path stays off the allocator: the
	// priority-sorted tenant view shared by the floor pass and the
	// preemption overlay, the per-claimant victim list, and the machine
	// list the placement rebuild walks.
	prioScratch   []*Tenant
	victimScratch []*Tenant
	machScratch   []MachineInfo
}

// NewScheduler validates the config, fills defaults, takes ownership of
// the pool and subscribes to its machine churn.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if cfg.Pool == nil {
		return nil, errors.New("cluster: scheduler requires a pool")
	}
	if cfg.CostWindow < 0 || cfg.MaxHistory < 0 {
		return nil, errors.New("cluster: negative scheduler parameters")
	}
	if cfg.CostWindow == 0 {
		cfg.CostWindow = time.Minute
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = schedWallClock{}
	}
	s := &Scheduler{cfg: cfg, clock: cfg.Clock, preempts: make(map[string]int)}
	s.mu.Lock()
	s.placeLocked()
	s.mu.Unlock()
	cfg.Pool.OnChurn(s.poolChurn)
	return s, nil
}

// poolChurn is the out-of-band re-arbitration path: the pool delivers a
// machine lifecycle transition (failure, recovery, straggler flag) and the
// scheduler immediately recomputes every grant against the new live
// capacity — without waiting for any tenant's next Resize. A failure
// shrinks grants fairly through the same floors → water-fill → preemption
// pipeline, with the lost-capacity overlay attributing the involuntary
// shrinks to the crash ("slots-lost" events, Tenant.LostSlots) so
// supervisors can tell failover from preemption.
func (s *Scheduler) poolChurn(ev ChurnEvent) {
	if ev.Kind == "machine-fail" && s.cfg.ReplaceOnFailure {
		// Return the wreck to the provider right away: its place under the
		// cap frees, so the demand-driven negotiation inside the
		// arbitration below can provision a fresh replacement machine.
		_ = s.cfg.Pool.Decommission(ev.Machine)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recordLocked(SchedulerEvent{At: s.clock.Now(), Kind: ev.Kind,
		From: ev.LiveBefore, To: ev.LiveAfter,
		Detail: fmt.Sprintf("machine %d", ev.Machine)})
	lost := 0
	if ev.Kind == "machine-fail" {
		if lost = (ev.LiveBefore - ev.LiveAfter) * s.cfg.Pool.SlotsPerMachine(); lost < 0 {
			lost = 0
		}
	}
	s.arbitrateLocked(lost)
}

// FailMachine reports a machine crash to the pool; the churn subscription
// re-arbitrates every lease against the surviving capacity immediately.
func (s *Scheduler) FailMachine(id int) error { return s.cfg.Pool.Fail(id) }

// RecoverMachine returns a failed machine to service; the freed capacity
// is re-arbitrated to the pending demands immediately.
func (s *Scheduler) RecoverMachine(id int) error { return s.cfg.Pool.Recover(id) }

// MarkStraggler flags (or clears) a machine as degraded-but-alive; the
// placement refreshes so leases concentrate on healthy machines first.
func (s *Scheduler) MarkStraggler(id int, on bool) error {
	return s.cfg.Pool.SetStraggler(id, on)
}

// Tenant is one topology's lease on the shared pool. It implements the
// supervisor's pool protocol (Kmax / Rebalance / Resize), so a
// loop.Supervisor drives it exactly as it would a private *Pool — except
// that Resize is a request the scheduler may grant only partially, and the
// grant can later shrink underneath the tenant when a higher-priority
// tenant preempts it (the supervisor notices via Kmax and shrinks
// gracefully).
type Tenant struct {
	s   *Scheduler
	cfg TenantConfig

	// All fields below are guarded by s.mu.
	demand     int
	granted    int
	lost       int         // cumulative slots taken by machine failures
	placement  map[int]int // machine id -> slots of the current grant
	report     TenantReport
	haveReport bool
	released   bool

	// Per-arbitration scratch (guarded by s.mu, meaningful only inside one
	// arbitrateLocked call): the grant entering the arbitration, whether
	// the preemption overlay took from this tenant, and which claimant took
	// last (the decision log reads its verdict inputs off the claimant's
	// report) — held on the tenant so the decision path needs no per-call
	// maps.
	prevGranted int
	preempted   bool
	preemptBy   *Tenant
}

// Register admits a tenant and grants its initial slots, growing the pool
// if needed. It fails with ErrNoCapacity when the initial grant cannot be
// covered next to the existing tenants' grants.
func (s *Scheduler) Register(cfg TenantConfig) (*Tenant, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tenants {
		if t.cfg.Name == cfg.Name {
			return nil, fmt.Errorf("cluster: tenant %q already registered", cfg.Name)
		}
	}
	t := &Tenant{s: s, cfg: cfg, demand: cfg.InitialSlots}
	s.tenants = append(s.tenants, t)
	s.arbitrateLocked(0)
	if t.granted < cfg.InitialSlots {
		s.tenants = s.tenants[:len(s.tenants)-1]
		t.demand, t.granted = 0, 0
		t.released = true
		s.arbitrateLocked(0)
		return nil, fmt.Errorf("%w: tenant %q needs %d initial slots", ErrNoCapacity, cfg.Name, cfg.InitialSlots)
	}
	s.recordLocked(SchedulerEvent{At: s.clock.Now(), Kind: "register", Tenant: cfg.Name,
		From: 0, To: t.granted, Detail: fmt.Sprintf("weight %g priority %d floor %d", cfg.Weight, cfg.Priority, cfg.MinSlots)})
	return t, nil
}

// State returns an atomic snapshot of pool, grants and demands.
func (s *Scheduler) State() SchedulerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedulerState{
		Machines: s.cfg.Pool.Machines(),
		Capacity: s.cfg.Pool.Kmax(),
	}
	for _, t := range s.tenants {
		st.Leased += t.granted
		st.Tenants = append(st.Tenants, TenantState{
			Name: t.cfg.Name, Weight: t.cfg.Weight, Priority: t.cfg.Priority,
			MinSlots: t.cfg.MinSlots, Demand: t.demand, Granted: t.granted,
			Lost: t.lost,
		})
	}
	st.Placement = append([]MachineUse(nil), s.placement...)
	return st
}

// History returns a copy of the retained decision history, oldest first.
func (s *Scheduler) History() []SchedulerEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SchedulerEvent, len(s.history))
	n := copy(out, s.history[s.histStart:])
	copy(out[n:], s.history[:s.histStart])
	return out
}

// recordLocked appends an event, overwriting the oldest past MaxHistory,
// and mirrors it into the decision log. Preempt events are the exception:
// arbitrateLocked emits those itself so they carry the Appendix-B verdict
// inputs the history line compresses away.
func (s *Scheduler) recordLocked(ev SchedulerEvent) {
	if s.cfg.DecisionLog != nil && ev.Kind != "preempt" {
		if k, ok := obs.KindFromString(ev.Kind); ok {
			s.cfg.DecisionLog.Emit(&obs.Record{
				At:   ev.At.UnixNano(),
				Kind: k, Tenant: ev.Tenant, From: ev.From, To: ev.To,
				PauseNS: ev.Pause.Nanoseconds(), Detail: ev.Detail,
			})
		}
	}
	if len(s.history) < s.cfg.MaxHistory {
		s.history = append(s.history, ev)
		return
	}
	s.history[s.histStart] = ev
	s.histStart = (s.histStart + 1) % len(s.history)
}

// arbitrateLocked recomputes every grant from scratch as a pure function
// of the current demands, weights, floors, priorities and utility reports:
//
//  1. negotiate the pool to cover aggregate demand (whole machines, within
//     the provider cap),
//  2. grant every tenant its floor, min(demand, MinSlots), in priority
//     then registration order,
//  3. water-fill the rest by weighted max-min: repeatedly grant one slot
//     to the unsatisfied tenant with the smallest granted/weight ratio,
//  4. overlay preemption: a violating higher-priority tenant still short
//     of its demand takes slots from lower-priority tenants (never below
//     their floors) where the Appendix-B cost/benefit guard clears,
//  5. map every grant onto live machines (healthy first, stragglers last).
//
// Because the computation is deterministic and depends only on those
// inputs, repeated arbitrations with unchanged inputs reproduce the same
// grants exactly — no churn — and the moment a violation clears or a
// demand drops, the next arbitration returns the slots automatically.
//
// lostCapacity is the slot count a machine failure just removed (0 for
// demand-driven arbitrations): involuntary shrinks that are not
// preemptions are attributed to the crash — the "lost capacity" overlay
// ("slots-lost" events, per-tenant lost counters) that lets a supervisor
// distinguish failover from preemption. The attribution is bounded by
// lostCapacity, so an unrelated shrink that happens to land in the same
// arbitration (say, a preemption overlay unwinding because its claimant's
// violation cleared) cannot inflate the failure accounting.
//
// It returns the pool transition and whether the machine count changed.
func (s *Scheduler) arbitrateLocked(lostCapacity int) (Transition, bool) {
	now := s.clock.Now()
	for _, t := range s.tenants {
		t.prevGranted = t.granted
		t.granted = 0
		t.preempted = false
		t.preemptBy = nil
	}

	// Negotiate the machine pool to the aggregate demand, clamped to the
	// provider cap. Only touch it when the machine count actually changes:
	// a no-op Resize would still charge a rebalance pause.
	var poolTr Transition
	poolChanged := false
	want := 0
	for _, t := range s.tenants {
		want += t.demand
	}
	if max := s.cfg.Pool.MaxKmax(); want > max {
		want = max
	}
	if machines, _, err := s.cfg.Pool.MachinesFor(want); err == nil && machines != s.cfg.Pool.Machines() {
		if tr, err := s.cfg.Pool.Resize(want); err == nil {
			poolTr, poolChanged = tr, true
			s.recordLocked(SchedulerEvent{At: now, Kind: "pool", From: tr.MachinesBefore,
				To: tr.MachinesAfter, Pause: tr.Pause, Detail: tr.Kind})
		}
	}
	capacity := s.cfg.Pool.Kmax()

	// Floors first: a tenant's MinSlots are off the fairness table, so a
	// burst of competing demand can never starve an incumbent below its
	// stable minimum. Priority then registration order decides who eats
	// when even the floors exceed capacity. The priority-sorted view is
	// shared with the preemption overlay below (same order: priority
	// descending, registration order within a rank).
	byPrio := append(s.prioScratch[:0], s.tenants...)
	slices.SortStableFunc(byPrio, func(a, b *Tenant) int {
		return cmp.Compare(b.cfg.Priority, a.cfg.Priority)
	})
	s.prioScratch = byPrio
	free := capacity
	for _, t := range byPrio {
		floor := t.cfg.MinSlots
		if floor > t.demand {
			floor = t.demand
		}
		if floor > free {
			floor = free
		}
		t.granted = floor
		free -= floor
	}

	// Weighted max-min water-fill of the remaining capacity.
	for free > 0 {
		var pick *Tenant
		bestRatio := math.Inf(1)
		for _, t := range s.tenants {
			if t.demand <= t.granted {
				continue
			}
			if ratio := float64(t.granted) / t.cfg.Weight; ratio < bestRatio {
				pick, bestRatio = t, ratio
			}
		}
		if pick == nil {
			break
		}
		pick.granted++
		free--
	}

	// The preemption overlay is part of the same pure function: it is
	// re-derived from the latest reports on every arbitration, so a
	// transfer stays in force exactly as long as the claimant still
	// reports a violation — and unwinds by itself the round after the
	// violation clears.
	s.preemptLocked(byPrio)

	// Record the net per-tenant changes of this arbitration.
	rebalance := s.cfg.Pool.Costs().Rebalance
	for _, t := range s.tenants {
		old := t.prevGranted
		switch {
		case t.granted > old:
			s.recordLocked(SchedulerEvent{At: now, Kind: "grant", Tenant: t.cfg.Name,
				From: old, To: t.granted, Detail: fmt.Sprintf("demand %d", t.demand)})
		case t.granted < old && t.preempted:
			if s.cfg.DecisionLog != nil && t.preemptBy != nil {
				// The audited form of the preemption: claimant, victim and
				// the Appendix-B inputs the guard weighed — marginal gain vs
				// loss, both external arrival rates pricing the pauses, and
				// the charged pause itself. Flag records that the pair was
				// priority-ordered (always true by victim selection).
				c := t.preemptBy
				s.cfg.DecisionLog.Emit(&obs.Record{
					At:   now.UnixNano(),
					Kind: obs.KindPreempt, Tenant: c.cfg.Name, Peer: t.cfg.Name,
					From: old, To: t.granted,
					Gain: c.report.GrowBenefit, Loss: t.report.ShrinkCost,
					Lambda0: c.report.Lambda0, PeerLambda0: t.report.Lambda0,
					PauseNS: rebalance.Nanoseconds(),
					Flag:    c.cfg.Priority > t.cfg.Priority,
				})
			}
			s.recordLocked(SchedulerEvent{At: now, Kind: "preempt", Tenant: t.cfg.Name,
				From: old, To: t.granted, Pause: rebalance,
				Detail: fmt.Sprintf("floor %d", t.cfg.MinSlots)})
		case t.granted < old && lostCapacity > 0:
			// The lost-capacity overlay: the demand did not drop and no
			// preemption fired — the slots went down with a machine. The
			// remaining lost-capacity budget bounds the attribution.
			took := old - t.granted
			if took > lostCapacity {
				took = lostCapacity
			}
			lostCapacity -= took
			t.lost += took
			s.recordLocked(SchedulerEvent{At: now, Kind: "slots-lost", Tenant: t.cfg.Name,
				From: old, To: t.granted, Pause: rebalance,
				Detail: fmt.Sprintf("machine failure; capacity %d", capacity)})
		case t.granted < old:
			s.recordLocked(SchedulerEvent{At: now, Kind: "shrink", Tenant: t.cfg.Name,
				From: old, To: t.granted, Detail: fmt.Sprintf("demand %d", t.demand)})
		}
	}
	s.placeLocked()
	return poolTr, poolChanged
}

// placeLocked rebuilds the slot → machine mapping for the current grants:
// live machines are filled in ID order with healthy machines before
// stragglers, the reserved slots land first, then each tenant's grant in
// registration order. The mapping is a pure function of the grants and the
// machine states, so it never disagrees with the arbitration — and because
// Leased <= Capacity is an arbitration invariant, every granted slot finds
// a machine.
func (s *Scheduler) placeLocked() {
	list := s.cfg.Pool.AppendMachineList(s.machScratch[:0])
	s.machScratch = list
	s.placement = s.placement[:0]
	for pass := 0; pass < 2; pass++ { // healthy machines first, stragglers second
		for _, m := range list {
			if m.Failed || m.Straggler != (pass == 1) {
				continue
			}
			s.placement = append(s.placement, MachineUse{
				ID: m.ID, Straggler: m.Straggler, Slots: s.cfg.Pool.SlotsPerMachine(),
			})
		}
	}
	reserved := s.cfg.Pool.ReservedSlots()
	cursor := 0
	for i := range s.placement {
		if reserved == 0 {
			break
		}
		take := reserved
		if take > s.placement[i].Slots {
			take = s.placement[i].Slots
		}
		s.placement[i].Reserved = take
		reserved -= take
	}
	for _, t := range s.tenants {
		if t.placement == nil {
			t.placement = make(map[int]int, 2)
		} else {
			clear(t.placement)
		}
		need := t.granted
		for need > 0 && cursor < len(s.placement) {
			row := &s.placement[cursor]
			free := row.Slots - row.Reserved - row.Leased
			if free <= 0 {
				cursor++
				continue
			}
			take := need
			if take > free {
				take = free
			}
			row.Leased += take
			t.placement[row.ID] += take
			need -= take
		}
	}
}

// preemptLocked moves slots from lower-priority tenants to unsatisfied
// violating higher-priority ones, under the Appendix-B cost/benefit guard:
// the claimant's predicted marginal gain must exceed the victim's marginal
// loss, and the net improvement over CostWindow must recoup the rebalance
// pauses both sides will pay (priced in tuples disturbed: λ0 · pause).
//
// A cleared guard is sticky for the length of the violation episode:
// preempts[claimant] records how many transferred slots the guard has
// authorized so far, and transfers up to that ceiling are re-taken on
// every arbitration *without* re-running the guard. The guard's inputs
// are the tenants' marginal utilities at their current allocations, which
// the transfer itself changes — re-litigating it every round would hand
// slots back through the fair water-fill one round and re-preempt them
// the next, both sides paying a pause each way. The ceiling only ratchets
// up through fresh guard clearances, and it resets the moment the
// claimant stops reporting a violation or its fair share covers it.
//
// claimants is every tenant in priority-descending order (the arbitration's
// shared sorted view); victims it takes from are flagged via t.preempted.
func (s *Scheduler) preemptLocked(claimants []*Tenant) {
	rebalance := s.cfg.Pool.Costs().Rebalance.Seconds()
	window := s.cfg.CostWindow.Seconds()
	for _, c := range claimants {
		sticky := s.preempts[c.cfg.Name]
		if c.demand <= c.granted || !c.haveReport || !c.report.Violating {
			delete(s.preempts, c.cfg.Name)
			continue
		}
		// Victims: strictly lower priority, above their floor, cheapest
		// marginal loss first (never a tenant that has not reported — a
		// blind preemption could destabilize it).
		victims := s.victimScratch[:0]
		for _, v := range s.tenants {
			if v.cfg.Priority < c.cfg.Priority && v.granted > v.cfg.MinSlots && v.haveReport {
				victims = append(victims, v)
			}
		}
		s.victimScratch = victims
		slices.SortStableFunc(victims, func(a, b *Tenant) int {
			if a.cfg.Priority != b.cfg.Priority {
				return cmp.Compare(a.cfg.Priority, b.cfg.Priority)
			}
			return cmp.Compare(a.report.ShrinkCost, b.report.ShrinkCost)
		})
		taken := 0
		for _, v := range victims {
			need := c.demand - c.granted
			if need <= 0 {
				break
			}
			avail := v.granted - v.cfg.MinSlots
			if avail <= 0 {
				continue
			}
			take := need
			if take > avail {
				take = avail
			}
			if guarded := take - (sticky - taken); guarded > 0 {
				// The portion beyond the sticky transfer must clear the
				// cost/benefit guard afresh.
				gain, loss := c.report.GrowBenefit, v.report.ShrinkCost
				if !(gain > loss) { // also false when loss is +Inf or NaN
					take -= guarded
				} else {
					// Both sides pay a rebalance pause; the net rate must
					// recoup it within the amortization window. The guard is
					// monotone in the transfer size, so testing the largest
					// one suffices.
					pausePenalty := (c.report.Lambda0 + v.report.Lambda0) * rebalance
					if float64(guarded)*(gain-loss)*window <= pausePenalty {
						take -= guarded
					}
				}
			}
			if take <= 0 {
				continue
			}
			v.granted -= take
			c.granted += take
			taken += take
			v.preempted = true
			v.preemptBy = c
		}
		if taken > sticky {
			s.preempts[c.cfg.Name] = taken
		}
	}
}

// Kmax reports the tenant's current slot grant — the processor budget its
// supervisor may allocate. It can shrink between calls when the scheduler
// preempts the tenant.
func (t *Tenant) Kmax() int {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.granted
}

// Name returns the tenant's registered name.
func (t *Tenant) Name() string { return t.cfg.Name }

// Rebalance records an executor remap within the tenant's current grant
// and returns its modeled pause (priced by the shared pool's cost model).
func (t *Tenant) Rebalance() Transition {
	return t.s.cfg.Pool.Rebalance()
}

// Resize submits an allocation request for target slots and returns the
// transition the arbitration produced for this tenant. The grant may be
// smaller than requested (partial grant, when the pool is contended) —
// callers must re-read Kmax and fit their allocation to it. A grow request
// that gains nothing returns ErrNoCapacity, which supervisors treat as a
// plain hold. Shrinking always succeeds and releases the slots to other
// tenants.
func (t *Tenant) Resize(target int) (Transition, error) {
	if target < 0 {
		return Transition{}, fmt.Errorf("cluster: negative slot request %d", target)
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.released {
		return Transition{}, ErrTenantReleased
	}
	old := t.granted
	machinesBefore := t.s.cfg.Pool.Machines()
	t.demand = target
	poolTr, poolChanged := t.s.arbitrateLocked(0)
	costs := t.s.cfg.Pool.Costs()
	tr := Transition{MachinesBefore: machinesBefore, MachinesAfter: t.s.cfg.Pool.Machines()}
	switch {
	case t.granted > old:
		tr.Kind = "scale-out"
		tr.Pause = costs.Rebalance
		if poolChanged && poolTr.Kind == "scale-out" {
			tr.Pause += costs.MachineColdStart
		}
	case t.granted < old:
		tr.Kind = "scale-in"
		tr.Pause = costs.Rebalance
		if poolChanged && poolTr.Kind == "scale-in" {
			tr.Pause += costs.MachineRelease
		}
	default:
		if target > old {
			return Transition{}, fmt.Errorf("%w: tenant %q asked %d, holds %d and nothing is free",
				ErrNoCapacity, t.cfg.Name, target, old)
		}
		tr.Kind = "rebalance"
		tr.Pause = costs.Rebalance
	}
	return tr, nil
}

// Report stores the tenant's latest utility self-assessment; the
// preemption guard reads it on the next arbitration.
func (t *Tenant) Report(r TenantReport) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.report = r
	t.haveReport = true
}

// Granted reports the tenant's current grant (alias of Kmax, for callers
// that read it as scheduler state rather than as a pool budget).
func (t *Tenant) Granted() int { return t.Kmax() }

// LostSlots reports the cumulative number of slots machine failures have
// taken from this tenant's grant — the supervisor's signal that a shrink
// is failover, not preemption. The counter only grows; callers diff
// successive reads to detect fresh losses. It survives Release as the
// lease's final tally.
func (t *Tenant) LostSlots() int {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.lost
}

// Placement reports which machines currently host the tenant's granted
// slots (machine ID -> slot count). The mapping shifts on every
// arbitration and machine lifecycle change; after Release it is empty.
func (t *Tenant) Placement() map[int]int {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	out := make(map[int]int, len(t.placement))
	for id, n := range t.placement {
		out[id] = n
	}
	return out
}

// SetPriority changes the tenant's preemption rank and re-arbitrates. The
// claimant's sticky preemption authorization is reset — it was earned at
// the old rank.
func (t *Tenant) SetPriority(priority int) error {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.released {
		return ErrTenantReleased
	}
	if t.cfg.Priority == priority {
		return nil
	}
	old := t.cfg.Priority
	t.cfg.Priority = priority
	delete(t.s.preempts, t.cfg.Name)
	t.s.recordLocked(SchedulerEvent{At: t.s.clock.Now(), Kind: "priority",
		Tenant: t.cfg.Name, From: old, To: priority})
	t.s.arbitrateLocked(0)
	return nil
}

// Release withdraws the tenant: its slots return to the pool and the
// remaining tenants' pending demands are re-arbitrated. Further lease
// operations fail with ErrTenantReleased.
func (t *Tenant) Release() {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.released {
		return
	}
	old := t.granted
	t.released = true
	t.demand, t.granted = 0, 0
	t.placement = nil // the slots return to the pool; no stale mapping
	delete(t.s.preempts, t.cfg.Name)
	for i, other := range t.s.tenants {
		if other == t {
			t.s.tenants = append(t.s.tenants[:i], t.s.tenants[i+1:]...)
			break
		}
	}
	t.s.recordLocked(SchedulerEvent{At: t.s.clock.Now(), Kind: "release",
		Tenant: t.cfg.Name, From: old, To: 0})
	t.s.arbitrateLocked(0)
}
