// Package cluster simulates the resource-pool substrate below the CSP
// layer: machines that each host a fixed number of executor slots, worker
// (JVM) processes with distinct cold-start and reuse costs, and the
// resource negotiator that starts and stops machines (the paper's
// Appendix-B negotiator sits below Storm's resource manager and talks to
// YARN; here it talks to this pool).
//
// The package also carries the cost model behind the paper's Figures 9-10:
// a rebalance that merely remaps executors on warm workers is cheap
// (seconds, because DRS reuses JVMs), a scale-out that must boot a new
// machine is expensive (the ~4.8 s spike of ExpA), and Storm's default
// stop-the-world rebalance is modeled for comparison (1-2 minutes).
//
// Machines have identity and a lifecycle: a provisioned machine is up
// until Fail marks it crashed (its slots leave the capacity on offer) and
// until Recover brings it back or Decommission returns it to the provider.
// A machine can also be flagged as a straggler — still serving, but
// degraded — which placement treats as a last-resort host. Fail/Recover
// are the churn inputs the failure-domain tests and the churn experiment
// drive; a Scheduler that owns the pool subscribes via OnChurn and
// re-arbitrates the leases out of band the moment capacity moves.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrNoCapacity is returned when a requested pool size exceeds the
// provider's machine limit.
var ErrNoCapacity = errors.New("cluster: provider machine limit reached")

// ErrUnknownMachine is returned for lifecycle operations naming a machine
// the pool does not hold.
var ErrUnknownMachine = errors.New("cluster: unknown machine")

// CostModel prices the three transition kinds, as durations of degraded
// service applied to in-flight tuples during the change.
type CostModel struct {
	// Rebalance is the pause for remapping executors on warm workers
	// (our improved mechanism: JVMs are reused).
	Rebalance time.Duration
	// MachineColdStart is the extra pause when a scale-out boots machines
	// and their workers (ExpA's 4777 ms spike).
	MachineColdStart time.Duration
	// MachineRelease is the pause when draining and stopping machines
	// (ExpB's ~1113 ms bump).
	MachineRelease time.Duration
	// DefaultRebalance is Storm's stop-the-world mechanism, for the
	// comparison the paper makes (1-2 minutes).
	DefaultRebalance time.Duration
}

// PaperCosts are the transition costs reported in §V.
func PaperCosts() CostModel {
	return CostModel{
		Rebalance:        3 * time.Second,
		MachineColdStart: 4777 * time.Millisecond,
		MachineRelease:   1113 * time.Millisecond,
		DefaultRebalance: 90 * time.Second,
	}
}

// PoolConfig describes the cluster geometry.
type PoolConfig struct {
	// SlotsPerMachine is the executor capacity of one machine (the paper
	// constrains each machine to 5 executors).
	SlotsPerMachine int
	// ReservedSlots are taken off the top of the pool for spouts and the
	// DRS executor itself (3 in the paper).
	ReservedSlots int
	// MaxMachines caps what the negotiator may provision (6 in the paper:
	// 5 for executors + 1 for Nimbus/ZooKeeper, which we fold into the cap).
	// A failed machine still occupies the cap until it recovers or is
	// decommissioned — the provider lease does not end with the crash.
	MaxMachines int
	// Costs prices transitions; zero values mean free transitions.
	Costs CostModel
}

// Validate reports configuration errors.
func (c PoolConfig) Validate() error {
	if c.SlotsPerMachine < 1 {
		return errors.New("cluster: slots per machine must be >= 1")
	}
	if c.ReservedSlots < 0 {
		return errors.New("cluster: reserved slots must be >= 0")
	}
	if c.MaxMachines < 1 {
		return errors.New("cluster: max machines must be >= 1")
	}
	if c.ReservedSlots >= c.SlotsPerMachine*c.MaxMachines {
		return errors.New("cluster: reserved slots consume the whole pool")
	}
	return nil
}

// Transition describes one applied pool change, with its modeled cost.
type Transition struct {
	// Kind is "rebalance", "scale-out", "scale-in", "machine-fail" or
	// "machine-recover".
	Kind string
	// MachinesBefore and MachinesAfter bracket the change (live machines).
	MachinesBefore, MachinesAfter int
	// Pause is the modeled service disruption.
	Pause time.Duration
}

// MachineInfo is one machine's identity and lifecycle state.
type MachineInfo struct {
	// ID identifies the machine for Fail/Recover/Decommission; IDs are
	// assigned once at provisioning and never reused within a pool.
	ID int
	// Failed reports a crashed machine: provisioned (it occupies the cap)
	// but contributing no capacity until Recover.
	Failed bool
	// Straggler flags a degraded machine: it still serves its slots, but
	// placement treats it as a last-resort host.
	Straggler bool
}

// ChurnEvent describes one machine lifecycle transition, delivered to the
// OnChurn subscriber after the pool state has changed.
type ChurnEvent struct {
	// Kind is "machine-fail", "machine-recover", "straggler" or
	// "straggler-clear".
	Kind string
	// Machine is the affected machine's ID.
	Machine int
	// LiveBefore and LiveAfter bracket the live machine count.
	LiveBefore, LiveAfter int
}

// machine is one pool machine's mutable record.
type machine struct {
	id        int
	failed    bool
	straggler bool
}

// Pool is the simulated machine pool. Safe for concurrent use.
type Pool struct {
	mu         sync.Mutex
	cfg        PoolConfig
	fleet      []machine // provisioned machines (live and failed), id order
	nextID     int
	history    []Transition
	churn      func(ChurnEvent)   // owner subscriber, called after mu is released
	churnExtra []func(ChurnEvent) // additional listeners (see AddChurnListener)
	workers    map[int]string     // machine id -> registered worker process
}

// NewPool builds a pool with the given starting machine count.
func NewPool(cfg PoolConfig, startMachines int) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if startMachines < 1 || startMachines > cfg.MaxMachines {
		return nil, fmt.Errorf("cluster: start machines %d out of [1, %d]", startMachines, cfg.MaxMachines)
	}
	p := &Pool{cfg: cfg}
	for i := 0; i < startMachines; i++ {
		p.nextID++
		p.fleet = append(p.fleet, machine{id: p.nextID})
	}
	return p, nil
}

// OnChurn registers the machine-lifecycle subscriber (a Scheduler that
// owns the pool). The callback runs after the transition is applied and
// after the pool lock is released, so it may call back into the pool.
// Only one subscriber is held; nil unregisters.
func (p *Pool) OnChurn(fn func(ChurnEvent)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.churn = fn
}

// Machines reports the current live machine count.
func (p *Pool) Machines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.liveLocked()
}

// Provisioned reports how many machines the pool holds from the provider,
// failed ones included — the count the MaxMachines cap applies to.
func (p *Pool) Provisioned() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fleet)
}

// MachineList returns every provisioned machine's state, in ID order.
func (p *Pool) MachineList() []MachineInfo {
	return p.AppendMachineList(nil)
}

// AppendMachineList appends every machine's status to dst and returns the
// extended slice — MachineList without the per-call allocation, for hot
// callers (the scheduler's placement rebuild) that keep a scratch buffer.
func (p *Pool) AppendMachineList(dst []MachineInfo) []MachineInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.fleet {
		dst = append(dst, MachineInfo{ID: m.id, Failed: m.failed, Straggler: m.straggler})
	}
	return dst
}

// LiveMachines returns the machines currently in service, in ID order —
// the last entry is the newest live machine, the canonical victim for
// failure-injection drivers.
func (p *Pool) LiveMachines() []MachineInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MachineInfo, 0, len(p.fleet))
	for _, m := range p.fleet {
		if !m.failed {
			out = append(out, MachineInfo{ID: m.id, Straggler: m.straggler})
		}
	}
	return out
}

func (p *Pool) liveLocked() int {
	n := 0
	for _, m := range p.fleet {
		if !m.failed {
			n++
		}
	}
	return n
}

func (p *Pool) failedLocked() int { return len(p.fleet) - p.liveLocked() }

func (p *Pool) findLocked(id int) *machine {
	for i := range p.fleet {
		if p.fleet[i].id == id {
			return &p.fleet[i]
		}
	}
	return nil
}

// Fail marks a live machine crashed: its slots leave the capacity on offer
// immediately, but the machine keeps occupying the provider cap until
// Recover or Decommission. The OnChurn subscriber is notified.
func (p *Pool) Fail(id int) error {
	p.mu.Lock()
	m := p.findLocked(id)
	if m == nil {
		p.mu.Unlock()
		return fmt.Errorf("%w: id %d", ErrUnknownMachine, id)
	}
	if m.failed {
		p.mu.Unlock()
		return fmt.Errorf("cluster: machine %d already failed", id)
	}
	before := p.liveLocked()
	m.failed = true
	p.history = append(p.history, Transition{Kind: "machine-fail", MachinesBefore: before, MachinesAfter: before - 1})
	notify := p.notifiersLocked()
	p.mu.Unlock()
	for _, fn := range notify {
		fn(ChurnEvent{Kind: "machine-fail", Machine: id, LiveBefore: before, LiveAfter: before - 1})
	}
	return nil
}

// Recover brings a failed machine back into service (MTTR elapsed, or the
// operator repaired it). The OnChurn subscriber is notified.
func (p *Pool) Recover(id int) error {
	p.mu.Lock()
	m := p.findLocked(id)
	if m == nil {
		p.mu.Unlock()
		return fmt.Errorf("%w: id %d", ErrUnknownMachine, id)
	}
	if !m.failed {
		p.mu.Unlock()
		return fmt.Errorf("cluster: machine %d is not failed", id)
	}
	before := p.liveLocked()
	m.failed = false
	p.history = append(p.history, Transition{Kind: "machine-recover", MachinesBefore: before, MachinesAfter: before + 1})
	notify := p.notifiersLocked()
	p.mu.Unlock()
	for _, fn := range notify {
		fn(ChurnEvent{Kind: "machine-recover", Machine: id, LiveBefore: before, LiveAfter: before + 1})
	}
	return nil
}

// Decommission returns a failed machine to the provider, freeing its place
// under the MaxMachines cap (so a replacement can be negotiated). Only
// failed machines can be decommissioned; live ones leave through Resize.
func (p *Pool) Decommission(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.fleet {
		if p.fleet[i].id == id {
			if !p.fleet[i].failed {
				return fmt.Errorf("cluster: machine %d is live; scale in instead", id)
			}
			p.fleet = append(p.fleet[:i], p.fleet[i+1:]...)
			delete(p.workers, id) // the machine is gone; so is its lease
			return nil
		}
	}
	return fmt.Errorf("%w: id %d", ErrUnknownMachine, id)
}

// SetStraggler flags or clears a machine's straggler state — the "slow but
// alive" signal a health checker raises. Capacity is unchanged; placement
// (and whoever watches the signal) treats the machine as a last-resort
// host. The OnChurn subscriber is notified so placements refresh.
func (p *Pool) SetStraggler(id int, on bool) error {
	p.mu.Lock()
	m := p.findLocked(id)
	if m == nil {
		p.mu.Unlock()
		return fmt.Errorf("%w: id %d", ErrUnknownMachine, id)
	}
	changed := m.straggler != on
	m.straggler = on
	live := p.liveLocked()
	notify := p.notifiersLocked()
	p.mu.Unlock()
	if changed {
		kind := "straggler"
		if !on {
			kind = "straggler-clear"
		}
		for _, fn := range notify {
			fn(ChurnEvent{Kind: kind, Machine: id, LiveBefore: live, LiveAfter: live})
		}
	}
	return nil
}

// Kmax reports the processor budget the pool offers: the live machines'
// slots minus the reserved ones.
func (p *Pool) Kmax() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kmaxLocked()
}

func (p *Pool) kmaxLocked() int {
	k := p.liveLocked()*p.cfg.SlotsPerMachine - p.cfg.ReservedSlots
	if k < 0 {
		k = 0
	}
	return k
}

// MaxKmax reports the largest processor budget the provider can offer
// right now: every machine up to the cap — failed machines still occupy
// their cap places — minus the reserved slots.
func (p *Pool) MaxKmax() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := (p.cfg.MaxMachines-p.failedLocked())*p.cfg.SlotsPerMachine - p.cfg.ReservedSlots
	if k < 0 {
		k = 0
	}
	return k
}

// SlotsPerMachine reports the executor capacity of one machine.
func (p *Pool) SlotsPerMachine() int { return p.cfg.SlotsPerMachine }

// ReservedSlots reports the slots taken off the top of the pool for
// spouts and the DRS executor.
func (p *Pool) ReservedSlots() int { return p.cfg.ReservedSlots }

// Costs returns the transition cost model the pool prices changes with.
func (p *Pool) Costs() CostModel {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Costs
}

// MachinesFor returns the fewest live machines whose pool covers the given
// number of processors, and the resulting Kmax.
func (p *Pool) MachinesFor(processors int) (machines, kmax int, err error) {
	if processors < 0 {
		return 0, 0, fmt.Errorf("cluster: negative processor count %d", processors)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.machinesForLocked(processors)
}

// Rebalance applies an executor remap with no pool change and returns the
// transition with its modeled pause.
func (p *Pool) Rebalance() Transition {
	p.mu.Lock()
	defer p.mu.Unlock()
	live := p.liveLocked()
	tr := Transition{
		Kind:           "rebalance",
		MachinesBefore: live,
		MachinesAfter:  live,
		Pause:          p.cfg.Costs.Rebalance,
	}
	p.history = append(p.history, tr)
	return tr
}

// Resize negotiates the pool to the given Kmax (quantized up to whole live
// machines) and returns the transition. Growing provisions fresh machines
// and pays the cold-start cost; shrinking decommissions live machines —
// stragglers first, then youngest — and pays the release cost; a no-op
// change returns a zero-cost rebalance-kind transition.
func (p *Pool) Resize(targetKmax int) (Transition, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	machines, _, err := p.machinesForLocked(targetKmax)
	if err != nil {
		return Transition{}, err
	}
	live := p.liveLocked()
	tr := Transition{MachinesBefore: live, MachinesAfter: machines}
	switch {
	case machines > live:
		tr.Kind = "scale-out"
		tr.Pause = p.cfg.Costs.Rebalance + p.cfg.Costs.MachineColdStart
		for i := live; i < machines; i++ {
			p.nextID++
			p.fleet = append(p.fleet, machine{id: p.nextID})
		}
	case machines < live:
		tr.Kind = "scale-in"
		tr.Pause = p.cfg.Costs.Rebalance + p.cfg.Costs.MachineRelease
		p.releaseLocked(live - machines)
	default:
		tr.Kind = "rebalance"
		tr.Pause = p.cfg.Costs.Rebalance
	}
	p.history = append(p.history, tr)
	return tr, nil
}

// releaseLocked removes n live machines: stragglers first (the shrink is
// the moment to shed degraded hardware), then the youngest healthy ones.
func (p *Pool) releaseLocked(n int) {
	drop := func(wantStraggler bool) bool {
		for i := len(p.fleet) - 1; i >= 0; i-- {
			if !p.fleet[i].failed && p.fleet[i].straggler == wantStraggler {
				delete(p.workers, p.fleet[i].id)
				p.fleet = append(p.fleet[:i], p.fleet[i+1:]...)
				return true
			}
		}
		return false
	}
	for ; n > 0; n-- {
		if !drop(true) && !drop(false) {
			return
		}
	}
}

func (p *Pool) machinesForLocked(processors int) (machines, kmax int, err error) {
	need := processors + p.cfg.ReservedSlots
	machines = (need + p.cfg.SlotsPerMachine - 1) / p.cfg.SlotsPerMachine
	if machines < 1 {
		machines = 1
	}
	if limit := p.cfg.MaxMachines - p.failedLocked(); machines > limit {
		return 0, 0, fmt.Errorf("%w: need %d machines, cap %d (%d failed)",
			ErrNoCapacity, machines, p.cfg.MaxMachines, p.failedLocked())
	}
	return machines, machines*p.cfg.SlotsPerMachine - p.cfg.ReservedSlots, nil
}

// History returns a copy of all applied transitions, in order.
func (p *Pool) History() []Transition {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Transition(nil), p.history...)
}

// PaperPool is the experiment cluster of §V-B: 6 machines, one reserved
// for coordination (folded into a 5-executor-machine cap of 5... the 25
// usable slots), 5 slots per machine, 3 slots reserved for the two spouts
// and the DRS executor — so 5 machines give Kmax = 22 and 4 give 17.
func PaperPool(startMachines int) (*Pool, error) {
	return NewPool(PoolConfig{
		SlotsPerMachine: 5,
		ReservedSlots:   3,
		MaxMachines:     5,
		Costs:           PaperCosts(),
	}, startMachines)
}
