// Package cluster simulates the resource-pool substrate below the CSP
// layer: machines that each host a fixed number of executor slots, worker
// (JVM) processes with distinct cold-start and reuse costs, and the
// resource negotiator that starts and stops machines (the paper's
// Appendix-B negotiator sits below Storm's resource manager and talks to
// YARN; here it talks to this pool).
//
// The package also carries the cost model behind the paper's Figures 9-10:
// a rebalance that merely remaps executors on warm workers is cheap
// (seconds, because DRS reuses JVMs), a scale-out that must boot a new
// machine is expensive (the ~4.8 s spike of ExpA), and Storm's default
// stop-the-world rebalance is modeled for comparison (1-2 minutes).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrNoCapacity is returned when a requested pool size exceeds the
// provider's machine limit.
var ErrNoCapacity = errors.New("cluster: provider machine limit reached")

// CostModel prices the three transition kinds, as durations of degraded
// service applied to in-flight tuples during the change.
type CostModel struct {
	// Rebalance is the pause for remapping executors on warm workers
	// (our improved mechanism: JVMs are reused).
	Rebalance time.Duration
	// MachineColdStart is the extra pause when a scale-out boots machines
	// and their workers (ExpA's 4777 ms spike).
	MachineColdStart time.Duration
	// MachineRelease is the pause when draining and stopping machines
	// (ExpB's ~1113 ms bump).
	MachineRelease time.Duration
	// DefaultRebalance is Storm's stop-the-world mechanism, for the
	// comparison the paper makes (1-2 minutes).
	DefaultRebalance time.Duration
}

// PaperCosts are the transition costs reported in §V.
func PaperCosts() CostModel {
	return CostModel{
		Rebalance:        3 * time.Second,
		MachineColdStart: 4777 * time.Millisecond,
		MachineRelease:   1113 * time.Millisecond,
		DefaultRebalance: 90 * time.Second,
	}
}

// PoolConfig describes the cluster geometry.
type PoolConfig struct {
	// SlotsPerMachine is the executor capacity of one machine (the paper
	// constrains each machine to 5 executors).
	SlotsPerMachine int
	// ReservedSlots are taken off the top of the pool for spouts and the
	// DRS executor itself (3 in the paper).
	ReservedSlots int
	// MaxMachines caps what the negotiator may provision (6 in the paper:
	// 5 for executors + 1 for Nimbus/ZooKeeper, which we fold into the cap).
	MaxMachines int
	// Costs prices transitions; zero values mean free transitions.
	Costs CostModel
}

// Validate reports configuration errors.
func (c PoolConfig) Validate() error {
	if c.SlotsPerMachine < 1 {
		return errors.New("cluster: slots per machine must be >= 1")
	}
	if c.ReservedSlots < 0 {
		return errors.New("cluster: reserved slots must be >= 0")
	}
	if c.MaxMachines < 1 {
		return errors.New("cluster: max machines must be >= 1")
	}
	if c.ReservedSlots >= c.SlotsPerMachine*c.MaxMachines {
		return errors.New("cluster: reserved slots consume the whole pool")
	}
	return nil
}

// Transition describes one applied pool change, with its modeled cost.
type Transition struct {
	// Kind is "rebalance", "scale-out" or "scale-in".
	Kind string
	// MachinesBefore and MachinesAfter bracket the change.
	MachinesBefore, MachinesAfter int
	// Pause is the modeled service disruption.
	Pause time.Duration
}

// Pool is the simulated machine pool. Safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	cfg      PoolConfig
	machines int
	history  []Transition
}

// NewPool builds a pool with the given starting machine count.
func NewPool(cfg PoolConfig, startMachines int) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if startMachines < 1 || startMachines > cfg.MaxMachines {
		return nil, fmt.Errorf("cluster: start machines %d out of [1, %d]", startMachines, cfg.MaxMachines)
	}
	return &Pool{cfg: cfg, machines: startMachines}, nil
}

// Machines reports the current machine count.
func (p *Pool) Machines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.machines
}

// Kmax reports the processor budget the pool offers: total slots minus the
// reserved ones.
func (p *Pool) Kmax() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kmaxLocked()
}

func (p *Pool) kmaxLocked() int {
	return p.machines*p.cfg.SlotsPerMachine - p.cfg.ReservedSlots
}

// MaxKmax reports the largest processor budget the provider can ever
// offer: every machine up to the cap, minus the reserved slots.
func (p *Pool) MaxKmax() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.MaxMachines*p.cfg.SlotsPerMachine - p.cfg.ReservedSlots
}

// Costs returns the transition cost model the pool prices changes with.
func (p *Pool) Costs() CostModel {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Costs
}

// MachinesFor returns the fewest machines whose pool covers the given
// number of processors, and the resulting Kmax.
func (p *Pool) MachinesFor(processors int) (machines, kmax int, err error) {
	if processors < 0 {
		return 0, 0, fmt.Errorf("cluster: negative processor count %d", processors)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.machinesForLocked(processors)
}

// Rebalance applies an executor remap with no pool change and returns the
// transition with its modeled pause.
func (p *Pool) Rebalance() Transition {
	p.mu.Lock()
	defer p.mu.Unlock()
	tr := Transition{
		Kind:           "rebalance",
		MachinesBefore: p.machines,
		MachinesAfter:  p.machines,
		Pause:          p.cfg.Costs.Rebalance,
	}
	p.history = append(p.history, tr)
	return tr
}

// Resize negotiates the pool to the given Kmax (quantized up to whole
// machines) and returns the transition. Growing pays the cold-start cost;
// shrinking pays the release cost; a no-op change returns a zero-cost
// rebalance-kind transition.
func (p *Pool) Resize(targetKmax int) (Transition, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	machines, _, err := p.machinesForLocked(targetKmax)
	if err != nil {
		return Transition{}, err
	}
	tr := Transition{MachinesBefore: p.machines, MachinesAfter: machines}
	switch {
	case machines > p.machines:
		tr.Kind = "scale-out"
		tr.Pause = p.cfg.Costs.Rebalance + p.cfg.Costs.MachineColdStart
	case machines < p.machines:
		tr.Kind = "scale-in"
		tr.Pause = p.cfg.Costs.Rebalance + p.cfg.Costs.MachineRelease
	default:
		tr.Kind = "rebalance"
		tr.Pause = p.cfg.Costs.Rebalance
	}
	p.machines = machines
	p.history = append(p.history, tr)
	return tr, nil
}

func (p *Pool) machinesForLocked(processors int) (machines, kmax int, err error) {
	need := processors + p.cfg.ReservedSlots
	machines = (need + p.cfg.SlotsPerMachine - 1) / p.cfg.SlotsPerMachine
	if machines < 1 {
		machines = 1
	}
	if machines > p.cfg.MaxMachines {
		return 0, 0, fmt.Errorf("%w: need %d machines, cap %d", ErrNoCapacity, machines, p.cfg.MaxMachines)
	}
	return machines, machines*p.cfg.SlotsPerMachine - p.cfg.ReservedSlots, nil
}

// History returns a copy of all applied transitions, in order.
func (p *Pool) History() []Transition {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Transition(nil), p.history...)
}

// PaperPool is the experiment cluster of §V-B: 6 machines, one reserved
// for coordination (folded into a 5-executor-machine cap of 5... the 25
// usable slots), 5 slots per machine, 3 slots reserved for the two spouts
// and the DRS executor — so 5 machines give Kmax = 22 and 4 give 17.
func PaperPool(startMachines int) (*Pool, error) {
	return NewPool(PoolConfig{
		SlotsPerMachine: 5,
		ReservedSlots:   3,
		MaxMachines:     5,
		Costs:           PaperCosts(),
	}, startMachines)
}
