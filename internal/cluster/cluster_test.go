package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func paperPool(t *testing.T, machines int) *Pool {
	t.Helper()
	p, err := PaperPool(machines)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  PoolConfig
	}{
		{"zero slots", PoolConfig{SlotsPerMachine: 0, MaxMachines: 1}},
		{"negative reserved", PoolConfig{SlotsPerMachine: 5, ReservedSlots: -1, MaxMachines: 1}},
		{"zero machines", PoolConfig{SlotsPerMachine: 5, MaxMachines: 0}},
		{"reserved eats pool", PoolConfig{SlotsPerMachine: 5, ReservedSlots: 5, MaxMachines: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestNewPoolBounds(t *testing.T) {
	cfg := PoolConfig{SlotsPerMachine: 5, ReservedSlots: 3, MaxMachines: 5}
	if _, err := NewPool(cfg, 0); err == nil {
		t.Error("zero start machines should be rejected")
	}
	if _, err := NewPool(cfg, 6); err == nil {
		t.Error("start above cap should be rejected")
	}
}

func TestPaperPoolArithmetic(t *testing.T) {
	// 5 machines x 5 slots - 3 reserved = 22; 4 machines -> 17.
	tests := []struct{ machines, kmax int }{
		{5, 22}, {4, 17}, {3, 12}, {1, 2},
	}
	for _, tt := range tests {
		p := paperPool(t, tt.machines)
		if got := p.Kmax(); got != tt.kmax {
			t.Errorf("%d machines: Kmax = %d, want %d", tt.machines, got, tt.kmax)
		}
	}
}

func TestMachinesFor(t *testing.T) {
	p := paperPool(t, 4)
	tests := []struct{ procs, machines, kmax int }{
		{17, 4, 17}, {18, 5, 22}, {22, 5, 22}, {12, 3, 12}, {1, 1, 2}, {0, 1, 2},
	}
	for _, tt := range tests {
		m, k, err := p.MachinesFor(tt.procs)
		if err != nil {
			t.Fatalf("MachinesFor(%d): %v", tt.procs, err)
		}
		if m != tt.machines || k != tt.kmax {
			t.Errorf("MachinesFor(%d) = (%d, %d), want (%d, %d)", tt.procs, m, k, tt.machines, tt.kmax)
		}
	}
	if _, _, err := p.MachinesFor(23); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("over-cap request: err = %v, want ErrNoCapacity", err)
	}
	if _, _, err := p.MachinesFor(-1); err == nil {
		t.Error("negative processors should error")
	}
}

func TestResizeScaleOutCost(t *testing.T) {
	p := paperPool(t, 4)
	tr, err := p.Resize(22)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "scale-out" || tr.MachinesBefore != 4 || tr.MachinesAfter != 5 {
		t.Errorf("transition = %+v", tr)
	}
	want := PaperCosts().Rebalance + PaperCosts().MachineColdStart
	if tr.Pause != want {
		t.Errorf("pause = %v, want %v (ExpA cold-start spike)", tr.Pause, want)
	}
	if p.Kmax() != 22 {
		t.Errorf("Kmax after scale-out = %d", p.Kmax())
	}
}

func TestResizeScaleInCost(t *testing.T) {
	p := paperPool(t, 5)
	tr, err := p.Resize(17)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "scale-in" || tr.MachinesAfter != 4 {
		t.Errorf("transition = %+v", tr)
	}
	want := PaperCosts().Rebalance + PaperCosts().MachineRelease
	if tr.Pause != want {
		t.Errorf("pause = %v, want %v (ExpB release bump)", tr.Pause, want)
	}
	if got := PaperCosts().MachineColdStart; tr.Pause >= got+PaperCosts().Rebalance {
		t.Errorf("scale-in must be cheaper than scale-out: %v", tr.Pause)
	}
}

func TestResizeNoop(t *testing.T) {
	p := paperPool(t, 5)
	tr, err := p.Resize(22)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "rebalance" || tr.MachinesAfter != 5 {
		t.Errorf("transition = %+v", tr)
	}
}

func TestResizeOverCapacity(t *testing.T) {
	p := paperPool(t, 5)
	if _, err := p.Resize(23); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
	if p.Machines() != 5 {
		t.Error("failed resize must not change the pool")
	}
}

func TestRebalanceCheaperThanDefault(t *testing.T) {
	// The paper's improvement: JVM-reusing rebalance takes seconds versus
	// Storm's default 1-2 minutes.
	c := PaperCosts()
	if c.Rebalance >= c.DefaultRebalance/10 {
		t.Errorf("improved rebalance %v should be far below default %v", c.Rebalance, c.DefaultRebalance)
	}
	p := paperPool(t, 5)
	tr := p.Rebalance()
	if tr.Kind != "rebalance" || tr.Pause != c.Rebalance {
		t.Errorf("transition = %+v", tr)
	}
}

func TestHistoryRecordsTransitions(t *testing.T) {
	p := paperPool(t, 4)
	p.Rebalance()
	if _, err := p.Resize(22); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Resize(17); err != nil {
		t.Fatal(err)
	}
	h := p.History()
	if len(h) != 3 {
		t.Fatalf("history length = %d, want 3", len(h))
	}
	kinds := []string{"rebalance", "scale-out", "scale-in"}
	for i, k := range kinds {
		if h[i].Kind != k {
			t.Errorf("history[%d].Kind = %q, want %q", i, h[i].Kind, k)
		}
	}
	// Returned slice is a copy.
	h[0].Kind = "mutated"
	if p.History()[0].Kind == "mutated" {
		t.Error("History must return a copy")
	}
}

func TestPoolConcurrentAccess(t *testing.T) {
	p := paperPool(t, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					_, _ = p.Resize(17 + (i%2)*5)
				} else {
					_ = p.Kmax()
					_ = p.History()
				}
			}
		}(g)
	}
	wg.Wait()
	if m := p.Machines(); m != 4 && m != 5 {
		t.Errorf("machines = %d after churn", m)
	}
}

func TestZeroCostModel(t *testing.T) {
	p, err := NewPool(PoolConfig{SlotsPerMachine: 2, MaxMachines: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Resize(6)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pause != 0 {
		t.Errorf("zero cost model gave pause %v", tr.Pause)
	}
	if tr.MachinesAfter != 3 {
		t.Errorf("machines = %d, want 3", tr.MachinesAfter)
	}
	_ = time.Second // keep time imported for cost comparisons above
}
