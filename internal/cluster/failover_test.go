package cluster

import (
	"errors"
	"testing"
	"time"
)

// TestPoolMachineLifecycle exercises the Fail/Recover/Decommission arc on
// a bare pool: capacity tracks the live set, failed machines occupy the
// provider cap, and decommissioning frees it.
func TestPoolMachineLifecycle(t *testing.T) {
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 2, MaxMachines: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Machines() != 3 || pool.Kmax() != 6 || pool.Provisioned() != 3 {
		t.Fatalf("fresh pool: live=%d kmax=%d provisioned=%d", pool.Machines(), pool.Kmax(), pool.Provisioned())
	}
	if err := pool.Fail(2); err != nil {
		t.Fatal(err)
	}
	if pool.Machines() != 2 || pool.Kmax() != 4 || pool.Provisioned() != 3 {
		t.Fatalf("after fail: live=%d kmax=%d provisioned=%d", pool.Machines(), pool.Kmax(), pool.Provisioned())
	}
	// The wreck occupies the cap: only one more machine is provisionable.
	if pool.MaxKmax() != 6 {
		t.Fatalf("MaxKmax with one failed machine = %d, want 6", pool.MaxKmax())
	}
	if err := pool.Fail(2); err == nil {
		t.Fatal("double fail accepted")
	}
	if err := pool.Fail(99); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("fail unknown: %v", err)
	}
	if err := pool.Recover(2); err != nil {
		t.Fatal(err)
	}
	if pool.Machines() != 3 || pool.Kmax() != 6 {
		t.Fatalf("after recover: live=%d kmax=%d", pool.Machines(), pool.Kmax())
	}
	if err := pool.Recover(2); err == nil {
		t.Fatal("recover of a live machine accepted")
	}
	if err := pool.Decommission(1); err == nil {
		t.Fatal("decommission of a live machine accepted")
	}
	if err := pool.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Decommission(1); err != nil {
		t.Fatal(err)
	}
	if pool.Provisioned() != 2 || pool.MaxKmax() != 8 {
		t.Fatalf("after decommission: provisioned=%d maxKmax=%d", pool.Provisioned(), pool.MaxKmax())
	}
	// Lifecycle transitions land in the history.
	kinds := map[string]int{}
	for _, tr := range pool.History() {
		kinds[tr.Kind]++
	}
	if kinds["machine-fail"] != 2 || kinds["machine-recover"] != 1 {
		t.Fatalf("history kinds = %v", kinds)
	}
}

// TestSchedulerFailoverShrinkAndRecovery: a machine crash re-arbitrates
// out of band — grants shrink fairly with "slots-lost" attribution and the
// per-tenant lost counters tick; recovery re-grants the standing demands.
func TestSchedulerFailoverShrinkAndRecovery(t *testing.T) {
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 2, MaxMachines: 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestScheduler(t, pool)
	a, err := s.Register(TenantConfig{Name: "a", MinSlots: 2, InitialSlots: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Register(TenantConfig{Name: "b", MinSlots: 2, InitialSlots: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The demand-driven negotiation may have recycled machines during
	// registration; crash whichever live machine is newest.
	live := pool.LiveMachines()
	victim := live[len(live)-1].ID
	if err := s.FailMachine(victim); err != nil {
		t.Fatal(err)
	}
	st := s.State()
	if st.Capacity != 8 {
		t.Fatalf("capacity after crash = %d, want 8", st.Capacity)
	}
	if st.Leased > st.Capacity {
		t.Fatalf("double-leased after crash: %d over %d", st.Leased, st.Capacity)
	}
	if got := grants(s); got["a"] != 4 || got["b"] != 4 {
		t.Fatalf("grants after crash = %v, want the fair 4/4", got)
	}
	if a.LostSlots() != 1 || b.LostSlots() != 1 {
		t.Fatalf("lost counters = %d/%d, want 1/1", a.LostSlots(), b.LostSlots())
	}
	var lostEvents, failEvents int
	for _, ev := range s.History() {
		switch ev.Kind {
		case "slots-lost":
			lostEvents++
		case "machine-fail":
			failEvents++
		}
	}
	if lostEvents != 2 || failEvents != 1 {
		t.Fatalf("history: %d slots-lost, %d machine-fail events", lostEvents, failEvents)
	}
	// No slot may sit on the dead machine.
	for _, row := range st.Placement {
		if row.ID == victim {
			t.Fatalf("placement still uses failed machine: %+v", row)
		}
	}
	// Recovery: the standing demands are re-granted immediately.
	if err := s.RecoverMachine(victim); err != nil {
		t.Fatal(err)
	}
	if got := grants(s); got["a"] != 5 || got["b"] != 5 {
		t.Fatalf("grants after recovery = %v, want 5/5", got)
	}
	if a.LostSlots() != 1 {
		t.Fatalf("lost counter changed on recovery: %d", a.LostSlots())
	}
}

// TestSchedulerFailoverRespectsFloors: the post-crash shrink obeys the
// same floor rule as every arbitration — nobody goes below
// min(demand, MinSlots) while capacity allows.
func TestSchedulerFailoverRespectsFloors(t *testing.T) {
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 2, MaxMachines: 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestScheduler(t, pool)
	if _, err := s.Register(TenantConfig{Name: "a", MinSlots: 6, InitialSlots: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(TenantConfig{Name: "b", MinSlots: 1, InitialSlots: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.FailMachine(1); err != nil {
		t.Fatal(err)
	}
	// Capacity 8; floors 6+1 = 7 fit, the spare slot water-fills to b.
	if got := grants(s); got["a"] != 6 || got["b"] != 2 {
		t.Fatalf("grants after crash = %v, want a=6 (floored) b=2", got)
	}
}

// TestSchedulerReplacementNegotiation: with ReplaceOnFailure the wreck is
// returned to the provider and the same arbitration provisions a fresh
// machine — grants never shrink, the tenants only pay the cold-start pause.
func TestSchedulerReplacementNegotiation(t *testing.T) {
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 2, MaxMachines: 3, Costs: PaperCosts()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(SchedulerConfig{Pool: pool, ReplaceOnFailure: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Register(TenantConfig{Name: "a", InitialSlots: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailMachine(2); err != nil {
		t.Fatal(err)
	}
	if got := a.Kmax(); got != 6 {
		t.Fatalf("grant after replaced crash = %d, want 6", got)
	}
	if pool.Machines() != 3 || pool.Provisioned() != 3 {
		t.Fatalf("pool after replacement: live=%d provisioned=%d, want 3/3", pool.Machines(), pool.Provisioned())
	}
	// The replacement is a fresh machine, not the wreck.
	for _, m := range pool.MachineList() {
		if m.ID == 2 {
			t.Fatalf("wreck still provisioned: %+v", m)
		}
	}
	if a.LostSlots() != 0 {
		t.Fatalf("lost counter = %d despite replacement", a.LostSlots())
	}
	// The negotiation paid a scale-out (cold start) for the replacement.
	sawScaleOut := false
	for _, ev := range s.History() {
		if ev.Kind == "pool" && ev.Detail == "scale-out" {
			sawScaleOut = true
		}
	}
	if !sawScaleOut {
		t.Fatal("no scale-out recorded for the replacement machine")
	}
}

// TestStragglerPlacement: flagging a machine as a straggler moves leases
// off it as far as healthy capacity allows, and back when it clears.
func TestStragglerPlacement(t *testing.T) {
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 4, MaxMachines: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestScheduler(t, pool)
	// 5 slots need both machines, so the demand-driven negotiation cannot
	// shrink the pool under the test.
	a, err := s.Register(TenantConfig{Name: "a", InitialSlots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Placement(); got[1] != 4 || got[2] != 1 {
		t.Fatalf("initial placement = %v, want 4 on machine 1 and 1 on machine 2", got)
	}
	if err := s.MarkStraggler(1, true); err != nil {
		t.Fatal(err)
	}
	if got := a.Placement(); got[2] != 4 || got[1] != 1 {
		t.Fatalf("placement with machine 1 straggling = %v, want the bulk on machine 2", got)
	}
	st := s.State()
	if len(st.Placement) != 2 || st.Placement[0].ID != 2 || !st.Placement[1].Straggler {
		t.Fatalf("placement rows = %+v, want healthy machine 2 first", st.Placement)
	}
	if err := s.MarkStraggler(1, false); err != nil {
		t.Fatal(err)
	}
	if got := a.Placement(); got[1] != 4 || got[2] != 1 {
		t.Fatalf("placement after clearing = %v, want the bulk back on machine 1", got)
	}
}

// TestSlotsLostAttributionBounded: a preemption overlay that unwinds in
// the same arbitration as a machine failure must not be booked as a
// failure loss — the slots-lost accounting is capped by the capacity the
// crash actually removed.
func TestSlotsLostAttributionBounded(t *testing.T) {
	s, batch, rt := preemptScenario(t, CostModel{}, time.Minute)
	batch.Report(TenantReport{Lambda0: 10, ShrinkCost: 0.05})
	rt.Report(TenantReport{Lambda0: 10, Violating: true, GrowBenefit: 2.0})
	if _, err := rt.Resize(14); err != nil {
		t.Fatal(err)
	}
	if got := grants(s); got["rt"] != 14 || got["batch"] != 6 {
		t.Fatalf("precondition: preemption should hold, got %v", got)
	}
	// The violation clears silently (Report alone does not arbitrate);
	// the next arbitration is triggered by a 1-slot machine crash. rt's
	// grant drops by 5 (4 unwound + 1 lost) but only 1 slot died.
	rt.Report(TenantReport{Lambda0: 10, Violating: false})
	live := s.cfg.Pool.LiveMachines()
	if err := s.FailMachine(live[len(live)-1].ID); err != nil {
		t.Fatal(err)
	}
	if total := rt.LostSlots() + batch.LostSlots(); total > 1 {
		t.Fatalf("attributed %d slots to a 1-slot crash (rt=%d batch=%d)",
			total, rt.LostSlots(), batch.LostSlots())
	}
	st := s.State()
	if st.Leased > st.Capacity {
		t.Fatalf("double-leased after unwind+crash: %d over %d", st.Leased, st.Capacity)
	}
}

// TestTenantSetPriority: flipping ranks re-runs the arbitration — the
// preemption that held under the old order unwinds under the new one.
func TestTenantSetPriority(t *testing.T) {
	s, batch, rt := preemptScenario(t, CostModel{}, time.Minute)
	batch.Report(TenantReport{Lambda0: 10, ShrinkCost: 0.05})
	rt.Report(TenantReport{Lambda0: 10, Violating: true, GrowBenefit: 2.0})
	if _, err := rt.Resize(14); err != nil {
		t.Fatal(err)
	}
	if got := grants(s); got["rt"] != 14 || got["batch"] != 6 {
		t.Fatalf("precondition: preemption should hold, got %v", got)
	}
	// Demote the claimant below its victim: the transfer must unwind.
	if err := rt.SetPriority(-1); err != nil {
		t.Fatal(err)
	}
	if got := grants(s); got["rt"] != 10 || got["batch"] != 10 {
		t.Fatalf("grants after demotion = %v, want the fair 10/10", got)
	}
}
