package cluster

import "fmt"

// Worker registration: the bridge between the pool's simulated machine
// lifecycle and real worker processes. A machine id can be leased to one
// worker process at a time; while the lease holds, the machine's fate and
// the process's fate are tied in both directions — the serve wiring fails
// the machine when the worker's heartbeat lease lapses, and kills the
// worker's connection when the pool fails the machine (so a scripted
// churn event revokes a real process's lease, not just a counter).

// AddChurnListener registers an additional churn subscriber alongside the
// OnChurn owner. Where OnChurn belongs to the Scheduler that arbitrates
// the pool, extra listeners observe: the worker coordinator uses one to
// revoke live worker connections when a worker-backed machine fails.
// Listeners run after the transition is applied and outside the pool
// lock, in registration order, after the OnChurn owner.
func (p *Pool) AddChurnListener(fn func(ChurnEvent)) {
	if fn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.churnExtra = append(p.churnExtra, fn)
}

// notifiersLocked snapshots the owner subscriber plus the extra listeners
// in invocation order. Callers fire them after releasing the pool lock.
func (p *Pool) notifiersLocked() []func(ChurnEvent) {
	out := make([]func(ChurnEvent), 0, 1+len(p.churnExtra))
	if p.churn != nil {
		out = append(out, p.churn)
	}
	return append(out, p.churnExtra...)
}

// BindWorker leases machine id to the named worker process. The machine
// must be provisioned and unbound; binding a failed machine is allowed
// (the caller typically Recovers it right after — a replacement process
// re-backing a crashed machine).
func (p *Pool) BindWorker(id int, worker string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.findLocked(id) == nil {
		return fmt.Errorf("%w: id %d", ErrUnknownMachine, id)
	}
	if w, bound := p.workers[id]; bound {
		return fmt.Errorf("cluster: machine %d already backed by worker %q", id, w)
	}
	if p.workers == nil {
		p.workers = make(map[int]string)
	}
	p.workers[id] = worker
	return nil
}

// UnbindWorker releases a machine's worker lease. Unknown or unbound ids
// are a no-op: death paths race with decommissions, and both sides may
// try to clean up the same lease.
func (p *Pool) UnbindWorker(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.workers, id)
}

// WorkerFor reports the worker process backing a machine, if any.
func (p *Pool) WorkerFor(id int) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	return w, ok
}

// WorkerBindings snapshots the machine -> worker lease table.
func (p *Pool) WorkerBindings() map[int]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]string, len(p.workers))
	for id, w := range p.workers {
		out[id] = w
	}
	return out
}
