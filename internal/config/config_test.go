package config

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/metrics"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestControllerConfigMapping(t *testing.T) {
	c := Default()
	cc, err := c.ControllerConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cc.Mode != core.ModeMinLatency || cc.Kmax != 22 {
		t.Errorf("mapped config = %+v", cc)
	}

	c.Mode = "min-resource"
	c.TmaxMillis = 500
	cc, err = c.ControllerConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cc.Mode != core.ModeMinResource || cc.Tmax != 0.5 {
		t.Errorf("mapped config = %+v", cc)
	}

	c.Mode = "bogus"
	if _, err := c.ControllerConfig(); err == nil {
		t.Error("unknown mode should be rejected")
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"nm < 1", func(c *Config) { c.SampleEveryNm = 0 }},
		{"zero pull interval", func(c *Config) { c.PullInterval = 0 }},
		{"bad smoothing", func(c *Config) { c.Smoothing = metrics.SmoothingSpec{Kind: "x"} }},
		{"negative clip", func(c *Config) { c.MaxServiceTime = -1 }},
		{"min-latency kmax", func(c *Config) { c.Kmax = 0 }},
		{"bad gain", func(c *Config) { c.MinGain = 2 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			c := Default()
			tt.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	raw := []byte(`{
		"mode": "min-resource",
		"tmax_millis": 500,
		"sample_every_nm": 10,
		"pull_interval": "2s",
		"smoothing": {"Kind": "window", "Window": 6},
		"min_gain": 0.1,
		"scale_in_slack": 0.2,
		"slots_per_machine": 5,
		"reserved_slots": 3
	}`)
	c, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode != "min-resource" || c.TmaxMillis != 500 {
		t.Errorf("parsed = %+v", c)
	}
	if time.Duration(c.PullInterval) != 2*time.Second {
		t.Errorf("pull interval = %v", time.Duration(c.PullInterval))
	}
	if c.Smoothing.Kind != "window" || c.Smoothing.Window != 6 {
		t.Errorf("smoothing = %+v", c.Smoothing)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"mode": "min-latency", "kmax": 22, "typo_field": 1}`)); err == nil {
		t.Error("unknown field should be rejected")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{"mode": "min-latency", "kmax": 0}`)); err == nil {
		t.Error("invalid config should be rejected at parse time")
	}
	if _, err := Parse([]byte(`{not json`)); err == nil {
		t.Error("bad JSON should be rejected")
	}
}

func TestDurationUnmarshalForms(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"1.5s"`)); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 1500*time.Millisecond {
		t.Errorf("string form = %v", time.Duration(d))
	}
	if err := d.UnmarshalJSON([]byte(`2000000000`)); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 2*time.Second {
		t.Errorf("numeric form = %v", time.Duration(d))
	}
	if err := d.UnmarshalJSON([]byte(`"not-a-duration"`)); err == nil {
		t.Error("garbage duration should error")
	}
	if err := d.UnmarshalJSON([]byte(`true`)); err == nil {
		t.Error("bool duration should error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drs.json")
	orig := Default()
	orig.Kmax = 48
	orig.Smoothing = metrics.SmoothingSpec{Kind: "window", Window: 8}
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kmax != 48 || got.Smoothing.Window != 8 {
		t.Errorf("round trip = %+v", got)
	}
	if time.Duration(got.PullInterval) != time.Duration(orig.PullInterval) {
		t.Errorf("pull interval lost: %v", got.PullInterval)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestSaveInvalidConfig(t *testing.T) {
	c := Default()
	c.Kmax = 0
	if err := c.Save(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("saving invalid config should error")
	}
}

func TestMeasurerConfigMapping(t *testing.T) {
	c := Default()
	c.MaxServiceTime = Duration(time.Second)
	mc := c.MeasurerConfig([]string{"a", "b"})
	if len(mc.OperatorNames) != 2 || mc.MaxServiceTime != time.Second {
		t.Errorf("measurer config = %+v", mc)
	}
	if _, err := metrics.NewMeasurer(mc); err != nil {
		t.Errorf("mapped measurer config unusable: %v", err)
	}
}
