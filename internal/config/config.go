// Package config implements the DRS configuration reader module (paper
// Appendix B-C): a single validated structure carrying every user- or
// system-provided parameter — the optimization problem type, Kmax/Tmax,
// the measurer's sampling and smoothing parameters, and the scheduler's
// re-allocation cost — with JSON load/save for sharing the way Storm
// shares configuration through ZooKeeper.
package config

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/metrics"
)

// Config is the full DRS parameter set.
type Config struct {
	// Mode is "min-latency" (Program (4)) or "min-resource" (Program (6)).
	Mode string `json:"mode"`
	// Kmax is the processor budget for min-latency mode.
	Kmax int `json:"kmax,omitempty"`
	// TmaxMillis is the real-time constraint for min-resource mode.
	TmaxMillis float64 `json:"tmax_millis,omitempty"`

	// SampleEveryNm is the measurer's first sampling layer: each executor
	// records the service time of every Nm-th tuple.
	SampleEveryNm int `json:"sample_every_nm"`
	// PullInterval is Tm, the measurer's collection period.
	PullInterval Duration `json:"pull_interval"`
	// Smoothing selects "none", "ewma" (with Alpha) or "window" (with Window).
	Smoothing metrics.SmoothingSpec `json:"smoothing"`
	// MaxServiceTime clips outlier service samples; zero disables.
	MaxServiceTime Duration `json:"max_service_time,omitempty"`

	// MinGain is the minimum estimated relative improvement that justifies
	// a re-allocation (the Appendix-B cost/benefit guard).
	MinGain float64 `json:"min_gain"`
	// ScaleInSlack is the headroom kept under Tmax when releasing resources.
	ScaleInSlack float64 `json:"scale_in_slack"`
	// SlotsPerMachine and ReservedSlots describe the pool geometry (the
	// paper's cluster: 5 slots/machine, 3 reserved for spouts + DRS).
	SlotsPerMachine int `json:"slots_per_machine"`
	ReservedSlots   int `json:"reserved_slots"`
}

// Duration is a time.Duration that marshals as a human-readable string
// ("500ms"), per the Uber guide's advice on durations crossing process
// boundaries.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("config: bad duration %q: %w", s, perr)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("config: duration must be a string or nanoseconds: %w", err)
	}
	*d = Duration(n)
	return nil
}

// Default returns the configuration used by the paper's experiments where
// stated, and sensible values elsewhere.
func Default() Config {
	return Config{
		Mode:            "min-latency",
		Kmax:            22,
		SampleEveryNm:   20,
		PullInterval:    Duration(5 * time.Second),
		Smoothing:       metrics.SmoothingSpec{Kind: "ewma", Alpha: 0.6},
		MinGain:         0.05,
		ScaleInSlack:    0.1,
		SlotsPerMachine: 5,
		ReservedSlots:   3,
	}
}

// Validate checks cross-field consistency.
func (c Config) Validate() error {
	if _, err := c.ControllerConfig(); err != nil {
		return err
	}
	if c.SampleEveryNm < 1 {
		return errors.New("config: sample_every_nm must be >= 1")
	}
	if c.PullInterval <= 0 {
		return errors.New("config: pull_interval must be positive")
	}
	if _, err := c.Smoothing.New(); err != nil {
		return err
	}
	if c.MaxServiceTime < 0 {
		return errors.New("config: max_service_time must be >= 0")
	}
	return nil
}

// ControllerConfig converts to the core controller's configuration.
func (c Config) ControllerConfig() (core.ControllerConfig, error) {
	cc := core.ControllerConfig{
		Kmax:            c.Kmax,
		Tmax:            c.TmaxMillis / 1e3,
		MinGain:         c.MinGain,
		ScaleInSlack:    c.ScaleInSlack,
		SlotsPerMachine: c.SlotsPerMachine,
		ReservedSlots:   c.ReservedSlots,
	}
	switch c.Mode {
	case "min-latency":
		cc.Mode = core.ModeMinLatency
	case "min-resource":
		cc.Mode = core.ModeMinResource
	default:
		return core.ControllerConfig{}, fmt.Errorf("config: unknown mode %q", c.Mode)
	}
	if err := cc.Validate(); err != nil {
		return core.ControllerConfig{}, err
	}
	return cc, nil
}

// MeasurerConfig converts to the measurer's configuration for the given
// operator list.
func (c Config) MeasurerConfig(operatorNames []string) metrics.MeasurerConfig {
	return metrics.MeasurerConfig{
		OperatorNames:  operatorNames,
		Smoothing:      c.Smoothing,
		MaxServiceTime: time.Duration(c.MaxServiceTime),
	}
}

// Load reads and validates a configuration file.
func Load(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: reading %s: %w", path, err)
	}
	return Parse(raw)
}

// Parse decodes and validates JSON configuration bytes. Unknown fields are
// rejected to catch typos.
func Parse(raw []byte) (Config, error) {
	cfg := Default()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("config: decoding: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Save writes the configuration as indented JSON.
func (c Config) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("config: encoding: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("config: writing %s: %w", path, err)
	}
	return nil
}
