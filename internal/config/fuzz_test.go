package config

import (
	"testing"
)

// FuzzParseConfig throws arbitrary bytes at the configuration parser and
// checks its contract: no panic, and every accepted configuration is
// valid, marshals, and survives a save/parse round trip unchanged in
// validity. Seed corpus: testdata/fuzz/FuzzParseConfig.
func FuzzParseConfig(f *testing.F) {
	f.Add([]byte(`{"mode":"min-latency","kmax":22,"sample_every_nm":20,
		"pull_interval":"5s","smoothing":{"kind":"ewma","alpha":0.6},
		"min_gain":0.05,"scale_in_slack":0.1,"slots_per_machine":5,"reserved_slots":3}`))
	f.Add([]byte(`{"mode":"min-resource","tmax_millis":500,"sample_every_nm":1,
		"pull_interval":5000000000,"smoothing":{"kind":"window","window":6},
		"min_gain":0,"scale_in_slack":0,"slots_per_machine":1,"reserved_slots":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"mode":"nope"}`))
	f.Add([]byte(`{"pull_interval":"-3s"}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		cfg, err := Parse(raw)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("Parse accepted an invalid config: %v\nconfig: %+v", verr, cfg)
		}
		if _, cerr := cfg.ControllerConfig(); cerr != nil {
			t.Fatalf("accepted config has no controller form: %v", cerr)
		}
	})
}
