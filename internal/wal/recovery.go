// Recovery: the boot-time scan that turns surviving segment files back
// into log state. The scan walks segments in index order, CRC-verifies
// every frame, and classifies damage by position — a bad or short frame
// at the tail of the *last* segment is the expected kill -9 artifact (a
// torn write(2)) and is truncated away; anything earlier means an
// acknowledged record may be gone and surfaces as ErrCorrupt instead of
// being papered over.

package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// recover scans l.opts.Dir and populates segments, tailSeq, watermark and
// the unacked record set. Called from Open before any appends.
func (l *Log) recover() (Recovered, error) {
	var rec Recovered
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, "*.wal"))
	if err != nil {
		return rec, err
	}
	sort.Strings(names)

	// Collect every record during the scan, then filter by the *final*
	// watermark: a watermark frame retires records appended before it in
	// any earlier segment. Retention (Prune) bounds how much this holds.
	var records []Record
	for i, name := range names {
		last := i == len(names)-1
		seg, n, trunc, err := l.scanSegment(name, last, &records)
		if err != nil {
			return rec, err
		}
		l.segments = append(l.segments, seg)
		rec.Records += n
		rec.TruncatedBytes += trunc
	}
	rec.Segments = len(names)
	rec.TailSeq = l.tailSeq
	rec.Watermark = l.watermark

	l.unacked = records[:0]
	for _, r := range records {
		if r.Seq > l.watermark {
			l.unacked = append(l.unacked, r)
		}
	}
	sort.Slice(l.unacked, func(i, j int) bool { return l.unacked[i].Seq < l.unacked[j].Seq })
	return rec, nil
}

// scanSegment reads one segment file front to back. For the last segment
// a torn tail is truncated in place; for earlier segments any damage is
// ErrCorrupt. It returns the segment descriptor (maxSeq filled in), the
// record count, and the truncated byte count.
func (l *Log) scanSegment(path string, last bool, records *[]Record) (segment, int, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return segment{}, 0, 0, err
	}
	defer f.Close()

	data, err := io.ReadAll(f)
	if err != nil {
		return segment{}, 0, 0, err
	}
	if len(data) < segHeaderLen || !bytes.Equal(data[:8], segMagic[:]) {
		return segment{}, 0, 0, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, filepath.Base(path))
	}
	index := binary.BigEndian.Uint64(data[8:16])
	seg := segment{index: index, path: path}

	off := int64(segHeaderLen)
	count := 0
	for {
		frame, fn, ok := nextFrame(data[off:])
		if fn == 0 {
			break // clean end of segment
		}
		if !ok {
			if !last {
				return seg, count, 0, fmt.Errorf("%w: %s: bad frame at offset %d", ErrCorrupt, filepath.Base(path), off)
			}
			// Torn tail: cut the file back to the last good frame so the
			// file is clean evidence for any later scan.
			trunc := int64(len(data)) - off
			if err := f.Truncate(off); err != nil {
				return seg, count, trunc, err
			}
			return seg, count, trunc, nil
		}
		switch frame[0] {
		case kindRecord:
			seq := binary.BigEndian.Uint64(frame[1:9])
			payload := make([]byte, len(frame)-9)
			copy(payload, frame[9:])
			*records = append(*records, Record{Seq: seq, Payload: payload})
			if seq > l.tailSeq {
				l.tailSeq = seq
			}
			if seq > seg.maxSeq {
				seg.maxSeq = seq
			}
			count++
		case kindWatermark:
			if w := binary.BigEndian.Uint64(frame[1:9]); w > l.watermark {
				l.watermark = w
			}
		default:
			// An unknown kind with a valid CRC is a version skew or a
			// deliberate corruption, not a torn write — never skip it.
			return seg, count, 0, fmt.Errorf("%w: %s: unknown frame kind %d at offset %d", ErrCorrupt, filepath.Base(path), frame[0], off)
		}
		off += int64(fn)
	}
	return seg, count, 0, nil
}

// nextFrame parses one frame from the front of data. It returns the
// payload, the total frame length consumed, and whether the frame is
// intact. fn == 0 means a clean end (no bytes left); ok == false with
// fn > 0 means damage (short header, short payload, CRC mismatch, or an
// implausible length).
func nextFrame(data []byte) (payload []byte, fn int, ok bool) {
	if len(data) == 0 {
		return nil, 0, true
	}
	if len(data) < frameHeaderLen {
		return nil, len(data), false
	}
	plen := int(binary.BigEndian.Uint32(data[0:4]))
	// A frame's payload is at least the kind byte; an absurd length is
	// damage, not a giant record (appends cap well below this).
	if plen < 1 || plen > 1<<30 {
		return nil, frameHeaderLen, false
	}
	if len(data) < frameHeaderLen+plen {
		return nil, len(data), false
	}
	payload = data[frameHeaderLen : frameHeaderLen+plen]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, frameHeaderLen + plen, false
	}
	return payload, frameHeaderLen + plen, true
}
