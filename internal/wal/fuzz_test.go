package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALSegment throws arbitrary bytes at the segment scanner as the
// *last* segment of a log — the position where recovery is most
// permissive (torn tails are repaired, not rejected). The invariants:
// the scanner never panics, never fabricates records (every recovered
// record must have a valid frame in the input), a second recovery of the
// repaired file is clean (truncation reaches a fixed point), and appends
// still work afterwards.
func FuzzWALSegment(f *testing.F) {
	// Seed corpus: a clean segment, a torn one, a CRC-flipped one, an
	// unknown-kind one, raw garbage, and boundary slices of a valid file.
	seed := validSegmentBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:segHeaderLen])
	f.Add(seed[:segHeaderLen+4])
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)-1] ^= 0xFF
	f.Add(flipped)
	unknown := append([]byte(nil), seed...)
	unknown = appendRawFrame(unknown, 200, []byte{1, 2, 3})
	f.Add(unknown)
	f.Add([]byte("garbage that is not a segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "0000000000000001.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, rec, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20, SyncEvery: -1})
		if err != nil {
			// Rejection (bad header, unknown kind, ...) is a valid
			// outcome; crashing or mis-parsing is not.
			return
		}
		// Whatever was recovered must also survive a clean second pass.
		un := l.Unacked()
		if len(un) != 0 && rec.Records == 0 {
			t.Fatalf("unacked %d records but scan reported 0", len(un))
		}
		// Ascending, not strictly: a forged input can carry duplicate
		// seqs with valid CRCs; the writer never does.
		for i := 1; i < len(un); i++ {
			if un[i-1].Seq > un[i].Seq {
				t.Fatalf("unacked not ascending: %d then %d", un[i-1].Seq, un[i].Seq)
			}
		}
		if err := l.Append(rec.TailSeq+1, []byte("post-recovery append")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2, rec2, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20, SyncEvery: -1})
		if err != nil {
			t.Fatalf("second Open after repair: %v", err)
		}
		if rec2.TruncatedBytes != 0 {
			t.Fatalf("repair did not reach a fixed point: second scan truncated %d bytes", rec2.TruncatedBytes)
		}
		if rec2.Records != rec.Records+1 {
			t.Fatalf("second scan saw %d records, want %d", rec2.Records, rec.Records+1)
		}
		l2.Close()
	})
}

// validSegmentBytes builds a well-formed single-segment log in memory.
func validSegmentBytes(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], 1)
	buf.Write(hdr[:])
	var frames []byte
	for seq := uint64(1); seq <= 5; seq++ {
		frames = frameRecord(frames, seq, []byte("seed-record"))
	}
	frames = frameWatermark(frames, 2)
	buf.Write(frames)
	return buf.Bytes()
}
