package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openT opens a log in dir with small, test-friendly options.
func openT(t *testing.T, dir string, segBytes int64) (*Log, Recovered) {
	t.Helper()
	l, rec, err := Open(Options{Dir: dir, SegmentBytes: segBytes, SyncEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, 1<<20)
	if rec.Records != 0 || rec.TailSeq != 0 || rec.Watermark != 0 {
		t.Fatalf("fresh dir recovered %+v, want zeroes", rec)
	}
	for seq := uint64(1); seq <= 100; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%03d", seq))); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
	if err := l.AppendWatermark(40); err != nil {
		t.Fatalf("AppendWatermark: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, dir, 1<<20)
	defer l2.Close()
	if rec2.Records != 100 || rec2.TailSeq != 100 || rec2.Watermark != 40 {
		t.Fatalf("recovered %+v, want 100 records, tail 100, watermark 40", rec2)
	}
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("clean log truncated %d bytes", rec2.TruncatedBytes)
	}
	un := l2.Unacked()
	if len(un) != 60 {
		t.Fatalf("unacked = %d records, want 60 (seqs 41..100)", len(un))
	}
	for i, r := range un {
		wantSeq := uint64(41 + i)
		if r.Seq != wantSeq || string(r.Payload) != fmt.Sprintf("rec-%03d", wantSeq) {
			t.Fatalf("unacked[%d] = seq %d payload %q", i, r.Seq, r.Payload)
		}
	}
	if again := l2.Unacked(); again != nil {
		t.Fatalf("second Unacked returned %d records, want nil", len(again))
	}
}

func TestAppendBatchAndConcurrency(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, 1<<20)

	// 8 goroutines × 32 batches of 8 records with disjoint seq ranges:
	// every record must survive, group commit must not interleave frames.
	const workers, batches, per = 8, 32, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w*batches*per) + 1
			recs := make([][]byte, per)
			for b := 0; b < batches; b++ {
				first := base + uint64(b*per)
				for i := range recs {
					recs[i] = []byte(fmt.Sprintf("w%d-%d", w, first+uint64(i)))
				}
				if err := l.AppendBatch(first, recs); err != nil {
					t.Errorf("AppendBatch: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := openT(t, dir, 1<<20)
	defer l2.Close()
	want := workers * batches * per
	if rec.Records != want || rec.TailSeq != uint64(want) {
		t.Fatalf("recovered %d records tail %d, want %d", rec.Records, rec.TailSeq, want)
	}
	un := l2.Unacked()
	seen := make(map[uint64]bool, want)
	for _, r := range un {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d in recovery", r.Seq)
		}
		seen[r.Seq] = true
	}
	if len(seen) != want {
		t.Fatalf("recovered %d distinct seqs, want %d", len(seen), want)
	}
}

func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, 4<<10) // minimum segment size: rotate often
	payload := bytes.Repeat([]byte("x"), 200)
	for seq := uint64(1); seq <= 200; seq++ {
		if err := l.Append(seq, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	segs := l.Segments()
	if segs < 4 {
		t.Fatalf("Segments() = %d after 200×200B appends at 4KiB, want rotation", segs)
	}

	// Prune below a mid watermark: early segments go, the tail stays.
	removed, err := l.Prune(100)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if removed == 0 {
		t.Fatalf("Prune(100) removed nothing with %d segments", segs)
	}
	if err := l.AppendWatermark(100); err != nil {
		t.Fatalf("AppendWatermark: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := openT(t, dir, 4<<10)
	defer l2.Close()
	if rec.TailSeq != 200 || rec.Watermark != 100 {
		t.Fatalf("recovered tail %d watermark %d, want 200/100", rec.TailSeq, rec.Watermark)
	}
	un := l2.Unacked()
	if len(un) == 0 || un[0].Seq > 101 || un[len(un)-1].Seq != 200 {
		t.Fatalf("unacked after prune: %d records, first %d last %d", len(un), un[0].Seq, un[len(un)-1].Seq)
	}
}

// TestTornTailTruncated injects the kill -9 artifact: a partial frame at
// the end of the last segment. Recovery must truncate it, keep every
// earlier record, and leave a cleanly appendable log.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 11} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir, 1<<20)
			for seq := uint64(1); seq <= 20; seq++ {
				if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			seg := lastSegment(t, dir)
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, info.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}

			l2, rec := openT(t, dir, 1<<20)
			if rec.Records != 19 || rec.TailSeq != 19 {
				t.Fatalf("recovered %d records tail %d after torn tail, want 19/19", rec.Records, rec.TailSeq)
			}
			if rec.TruncatedBytes == 0 {
				t.Fatalf("TruncatedBytes = 0, want > 0")
			}
			// The log must accept appends after repair.
			if err := l2.Append(20, []byte("rec-20-again")); err != nil {
				t.Fatalf("Append after repair: %v", err)
			}
			if err := l2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			_, rec3 := openT(t, dir, 1<<20)
			if rec3.Records != 20 || rec3.TruncatedBytes != 0 {
				t.Fatalf("third life recovered %+v, want 20 records, clean", rec3)
			}
		})
	}
}

// TestTornTailCorruptCRC flips payload bytes in the final frame — a torn
// write that kept the full length. The CRC scan must drop exactly that
// frame.
func TestTornTailCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, 1<<20)
	for seq := uint64(1); seq <= 10; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, 1<<20)
	defer l2.Close()
	if rec.Records != 9 || rec.TailSeq != 9 {
		t.Fatalf("recovered %d records tail %d after CRC-bad tail, want 9/9", rec.Records, rec.TailSeq)
	}
}

// TestMidLogCorruptionRejected: damage before the last segment is not a
// torn tail — it means acknowledged records are gone, and Open must fail
// loudly instead of replaying a hole.
func TestMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, 4<<10)
	payload := bytes.Repeat([]byte("y"), 200)
	for seq := uint64(1); seq <= 100; seq++ {
		if err := l.Append(seq, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Segments() < 2 {
		t.Fatalf("need ≥2 segments for a mid-log wound, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	first := firstSegment(t, dir)
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(Options{Dir: dir, SegmentBytes: 4 << 10, SyncEvery: -1})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

// TestForeignHeaderRejected: a segment whose header is not ours must be
// refused, not scanned.
func TestForeignHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "0000000000000001.wal"), []byte("not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{Dir: dir})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with foreign segment: err = %v, want ErrCorrupt", err)
	}
}

// TestUnknownFrameKindRejected: a valid-CRC frame with an unknown kind is
// version skew, not a torn write — never silently skipped.
func TestUnknownFrameKindRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, 1<<20)
	if err := l.Append(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := appendRawFrame(nil, 99, binary.BigEndian.AppendUint64(nil, 7))
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = Open(Options{Dir: dir, SegmentBytes: 1 << 20, SyncEvery: -1})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with unknown frame kind: err = %v, want ErrCorrupt", err)
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, 1<<20)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(0)
	ack1 := tr.Deliver(10) // [1,10]
	ack2 := tr.Deliver(15) // [11,15]
	ack3 := tr.Deliver(22) // [16,22]
	if w := tr.Watermark(); w != 0 {
		t.Fatalf("watermark before any completion = %d", w)
	}
	ack2() // out of order: nothing contiguous yet
	if w := tr.Watermark(); w != 0 {
		t.Fatalf("watermark after middle completion = %d, want 0", w)
	}
	ack1()
	if w := tr.Watermark(); w != 15 {
		t.Fatalf("watermark = %d, want 15 (ranges 1 and 2 done)", w)
	}
	ack3()
	if w := tr.Watermark(); w != 22 {
		t.Fatalf("watermark = %d, want 22", w)
	}
	if p := tr.Pending(); p != 0 {
		t.Fatalf("pending = %d, want 0", p)
	}
	// Recovered start: watermark resumes past the prior life.
	tr2 := NewTracker(100)
	ack := tr2.Deliver(110)
	ack()
	if w := tr2.Watermark(); w != 110 {
		t.Fatalf("recovered tracker watermark = %d, want 110", w)
	}
	// Stale/empty delivery is a no-op.
	tr2.Deliver(110)()
	if w := tr2.Watermark(); w != 110 {
		t.Fatalf("stale delivery moved watermark to %d", w)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(0)
	const ranges = 200
	acks := make([]func(), ranges)
	for i := 0; i < ranges; i++ {
		acks[i] = tr.Deliver(uint64((i + 1) * 10))
	}
	var wg sync.WaitGroup
	for i := range acks {
		wg.Add(1)
		go func(f func()) { defer wg.Done(); f() }(acks[i])
	}
	wg.Wait()
	if w := tr.Watermark(); w != ranges*10 {
		t.Fatalf("watermark = %d, want %d", w, ranges*10)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadCheckpoint(dir); err != nil || ok {
		t.Fatalf("LoadCheckpoint on empty dir: ok=%v err=%v", ok, err)
	}
	want := Checkpoint{
		Seq:       123,
		Watermark: 100,
		Alloc:     map[string]int{"parse": 2, "count": 5},
		Slots:     7,
		Rounds:    42,
		Admitted:  123,
		Completed: 100,
		Shed:      9,
	}
	if err := SaveCheckpoint(dir, want); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	got, ok, err := LoadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint: ok=%v err=%v", ok, err)
	}
	if got.Seq != want.Seq || got.Slots != want.Slots || got.Alloc["count"] != 5 || got.Rounds != 42 {
		t.Fatalf("LoadCheckpoint = %+v, want %+v", got, want)
	}
	// Corrupt checkpoint must error, not cold-start.
	if err := os.WriteFile(filepath.Join(dir, checkpointFile), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(dir); err == nil {
		t.Fatal("LoadCheckpoint on corrupt file: nil error")
	}
}

func TestSyncEveryCadence(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// With an hour cadence the append path must still write(2) (the
	// durability contract for kill -9) — verified by recovery, since
	// Close flushes but a second process sees only written bytes.
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(seq, []byte("z")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, 1<<20)
	if rec.Records != 5 {
		t.Fatalf("recovered %d records, want 5", rec.Records)
	}
}

// lastSegment returns the highest-indexed segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return names[len(names)-1]
}

// firstSegment returns the lowest-indexed segment file in dir.
func firstSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return names[0]
}

// appendRawFrame frames an arbitrary kind+body with a valid CRC — test
// helper for forging frames recovery should reject.
func appendRawFrame(dst []byte, kind byte, body []byte) []byte {
	payloadLen := 1 + len(body)
	dst = growFrame(dst, payloadLen)
	p := dst[len(dst)-payloadLen:]
	p[0] = kind
	copy(p[1:], body)
	sealFrame(dst, payloadLen)
	return dst
}
