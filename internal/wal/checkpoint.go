// Checkpoint: the control-plane sidecar to the record log. The WAL makes
// admitted *data* durable; the checkpoint makes the *decisions* durable —
// the supervisor's last allocation, the lease grant, and the cumulative
// books — so a restarted process resumes scaling from where it was
// instead of re-learning the workload from a cold controller.

package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointFile is the checkpoint's name inside the WAL directory.
const checkpointFile = "checkpoint.json"

// Checkpoint is the periodically persisted topology/control state. It is
// written atomically (tmp + rename) beside the segments; a missing file
// means a cold start, a malformed one is an error (never silently
// ignored — it may carry a lease the scheduler must re-grant).
type Checkpoint struct {
	// Seq is the gate's admission sequence at capture time.
	Seq uint64 `json:"seq"`
	// Watermark is the completion watermark at capture time.
	Watermark uint64 `json:"watermark"`
	// Alloc is the supervisor's last applied allocation, operator name ->
	// parallelism.
	Alloc map[string]int `json:"alloc,omitempty"`
	// Slots is the tenant's granted slot count at capture time.
	Slots int `json:"slots"`
	// Rounds is the supervisor's completed control rounds.
	Rounds int64 `json:"rounds"`
	// CooldownMS is the remaining supervisor cooldown at capture time, in
	// milliseconds — re-imposed on restart so a crash cannot flap around
	// hysteresis the prior life earned.
	CooldownMS int64 `json:"cooldown_ms,omitempty"`
	// Admitted/Completed/Shed carry the cumulative gate books so the
	// zero-loss audit spans process lives.
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
}

// SaveCheckpoint atomically replaces the checkpoint in dir.
func SaveCheckpoint(dir string, c Checkpoint) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, checkpointFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err != nil {
		return err
	}
	// fsync the tmp file before the rename: a rename is only atomic on
	// disk if the content it points at is.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	f.Close()
	return os.Rename(tmp, filepath.Join(dir, checkpointFile))
}

// LoadCheckpoint reads the checkpoint from dir. ok is false (with a nil
// error) when no checkpoint exists — a cold start.
func LoadCheckpoint(dir string) (c Checkpoint, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if errors.Is(err, os.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return Checkpoint{}, false, fmt.Errorf("wal: bad checkpoint: %w", err)
	}
	return c, true, nil
}
