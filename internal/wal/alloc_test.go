package wal

import (
	"runtime"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/obs"
)

// TestAppendBatchZeroAllocs pins the durable admission hot path — frame,
// CRC-32C, stage, group-commit write — at zero allocations per batch in
// steady state (rotation excluded by an oversized segment). Every admit
// ACK waits behind this path, so an allocation here is a regression the
// suite should fail on, not a bench note.
func TestAppendBatchZeroAllocs(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	l, _, err := Open(Options{
		Dir:          t.TempDir(),
		SegmentBytes: 1 << 30, // no rotation inside the measurement
		SyncEvery:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const batch = 64
	payload := []byte("0123456789abcdef0123456789abcdef")
	recs := make([][]byte, batch)
	for i := range recs {
		recs[i] = payload
	}
	seq := uint64(0)
	// Warm the staging buffers past their high-water mark first.
	for i := 0; i < 32; i++ {
		if err := l.AppendBatch(seq+1, recs); err != nil {
			t.Fatal(err)
		}
		seq += batch
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(2000, func() {
		if err := l.AppendBatch(seq+1, recs); err != nil {
			t.Fatal(err)
		}
		seq += batch
	})
	if allocs != 0 {
		t.Fatalf("AppendBatch allocated %.3f/batch; want 0", allocs)
	}
}
