// Package wal is the durability layer under the ingest front door: a
// segmented, CRC-framed write-ahead log that makes at-least-once survive
// process death, not just executor crashes. The contract with the gate is
// append-before-ACK — a record is only acknowledged to the client once its
// frame has reached the log file via write(2), so a kill -9 can never take
// an acknowledged record with it (the page cache belongs to the kernel,
// not the process; fsync, batched separately, extends the guarantee to
// machine crashes). On boot, Open replays the surviving segments, trims a
// torn tail, and hands back every record above the compacted ack
// watermark for re-injection through the normal spout path.
//
// The moving parts:
//
//   - Log: the append side. Appends stage frames into an in-memory buffer
//     under a mutex and then group-commit: one appender becomes the
//     leader, writes everything staged in a single write(2), and releases
//     every waiter whose frame the write covered. Concurrent appenders
//     therefore amortize the syscall — the admit path pays ~O(100 ns)
//     per record, not a syscall each. fsync runs on a cadence
//     (Options.SyncEvery), not per commit.
//   - Segments: the log rotates at Options.SegmentBytes. Retention is
//     driven by the ack watermark: Prune deletes closed segments whose
//     highest record seq is at or below it, so the log's size tracks the
//     in-flight window, not history.
//   - Watermark records: the gate periodically appends the completion
//     tracker's contiguous watermark. Recovery replays only records above
//     the last one — everything below provably completed processing.
//   - Tracker (tracker.go): turns per-batch completion callbacks from the
//     engine into the contiguous watermark.
//   - Checkpoint (checkpoint.go): a small atomically-replaced JSON file
//     beside the segments carrying the control-plane state (allocation,
//     grant, cumulative books) a restart needs to resume sanely.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"
)

// Frame layout: every record is [length u32][crc u32][payload], both
// big-endian; the payload is one kind byte followed by the kind's body,
// and the CRC (Castagnoli) covers the whole payload. Bodies:
//
//	kindRecord:    seq u64, record bytes (the admitted client record)
//	kindWatermark: seq u64 (every record seq <= it has fully completed)
//
// A segment file starts with a 16-byte header: an 8-byte magic and the
// segment's u64 index, so a renamed or mixed-up file is rejected instead
// of silently replayed.
const (
	frameHeaderLen = 8
	segHeaderLen   = 16

	kindRecord    = 1
	kindWatermark = 2
)

var segMagic = [8]byte{'D', 'R', 'S', 'W', 'A', 'L', '1', '\n'}

// castagnoli is the CRC-32C table shared by framing and recovery.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt reports corruption that recovery cannot attribute to a torn
// tail write — a bad frame in the middle of the log, a segment with a
// foreign header. A torn tail (the expected kill -9 artifact) is repaired
// silently; mid-log corruption means lost acknowledged records, which
// must surface, not vanish.
var ErrCorrupt = errors.New("wal: corrupt segment")

// Options parameterizes Open.
type Options struct {
	// Dir holds the segment files and the checkpoint (required; created
	// if missing).
	Dir string
	// SegmentBytes rotates the active segment past this size (default
	// 64 MiB, minimum 4 KiB).
	SegmentBytes int64
	// SyncEvery is the fsync cadence: a group commit fsyncs only when
	// this much time has passed since the last sync (default 10ms;
	// negative syncs on every flush). write(2) still happens on every
	// commit — the cadence bounds data loss on a *kernel* crash, not a
	// process kill.
	SyncEvery time.Duration
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("wal: Dir is required")
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SegmentBytes < 4<<10 {
		o.SegmentBytes = 4 << 10
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 10 * time.Millisecond
	}
	return o, nil
}

// Record is one recovered admitted record awaiting re-injection.
type Record struct {
	// Seq is the record's admission sequence number.
	Seq uint64
	// Payload is the client record as admitted.
	Payload []byte
}

// Recovered summarizes what Open found on disk.
type Recovered struct {
	// Segments is how many segment files survived.
	Segments int
	// Records is how many record frames the scan read.
	Records int
	// TailSeq is the highest record seq in the log (0 when empty).
	TailSeq uint64
	// Watermark is the last ack watermark appended before death; every
	// record at or below it completed processing.
	Watermark uint64
	// TruncatedBytes is the torn tail the scan cut off (0 on a clean
	// shutdown).
	TruncatedBytes int64
}

// segment is one closed or active segment file.
type segment struct {
	index  uint64
	path   string
	maxSeq uint64 // highest record seq appended while it was active
}

// Log is an open write-ahead log. Append/AppendBatch/AppendWatermark are
// safe for concurrent use; they return once the frame has reached the
// file via write(2) (group-committed with every concurrent appender).
type Log struct {
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte // staged frames awaiting the next group commit
	spare   []byte // double buffer handed back by the leader
	staged  int64  // logical log offset including staged bytes
	written int64  // logical log offset durably written
	writing bool   // a leader is inside write(2)
	werr    error  // sticky write failure; fails all later appends
	closed  bool

	f        *os.File // active segment
	fileSize int64    // bytes written to the active segment file
	segments []segment
	active   segment

	tailSeq   uint64 // highest record seq appended (any segment)
	watermark uint64 // highest watermark appended
	lastSync  time.Time

	unacked []Record // recovery output, consumed by Unacked
}

// Open creates or recovers the log in o.Dir: existing segments are
// scanned front to back, frames are CRC-verified, a torn tail on the last
// segment is truncated away, and every record above the last watermark is
// retained for Unacked. Appends continue on a fresh segment.
func Open(o Options) (*Log, Recovered, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, Recovered{}, err
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, Recovered{}, err
	}
	l := &Log{opts: o}
	l.cond = sync.NewCond(&l.mu)
	rec, err := l.recover()
	if err != nil {
		return nil, rec, err
	}
	// Appends resume on a fresh segment: recovery never re-opens a file
	// for writing, so a recovered segment is immutable evidence.
	if err := l.rotateLocked(); err != nil {
		return nil, rec, err
	}
	return l, rec, nil
}

// segPath names a segment file by index.
func (l *Log) segPath(index uint64) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("%016d.wal", index))
}

// rotateLocked closes the active segment (if any) and opens the next one.
// Callers hold no lock during Open; during appends the leader calls it
// with l.mu held and no concurrent writer possible.
func (l *Log) rotateLocked() error {
	next := uint64(1)
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.active.maxSeq = l.tailSeq
		l.segments = append(l.segments, l.active)
	}
	if n := len(l.segments); n > 0 {
		next = l.segments[n-1].index + 1
	}
	f, err := os.OpenFile(l.segPath(next), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], next)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.fileSize = segHeaderLen
	l.active = segment{index: next, path: l.segPath(next)}
	return nil
}

// frameRecord appends one kindRecord frame to dst and returns it.
func frameRecord(dst []byte, seq uint64, rec []byte) []byte {
	payloadLen := 1 + 8 + len(rec)
	dst = growFrame(dst, payloadLen)
	p := dst[len(dst)-payloadLen:]
	p[0] = kindRecord
	binary.BigEndian.PutUint64(p[1:], seq)
	copy(p[9:], rec)
	sealFrame(dst, payloadLen)
	return dst
}

// frameWatermark appends one kindWatermark frame to dst and returns it.
func frameWatermark(dst []byte, seq uint64) []byte {
	const payloadLen = 1 + 8
	dst = growFrame(dst, payloadLen)
	p := dst[len(dst)-payloadLen:]
	p[0] = kindWatermark
	binary.BigEndian.PutUint64(p[1:], seq)
	sealFrame(dst, payloadLen)
	return dst
}

// growFrame extends dst by one frame header plus payloadLen bytes,
// returning the slice with the new region appended (contents are fully
// overwritten by the caller).
func growFrame(dst []byte, payloadLen int) []byte {
	need := frameHeaderLen + payloadLen
	dst = slices.Grow(dst, need)
	return dst[:len(dst)+need]
}

// sealFrame writes the length and CRC of the frame occupying the last
// frameHeaderLen+payloadLen bytes of buf.
func sealFrame(buf []byte, payloadLen int) {
	frame := buf[len(buf)-frameHeaderLen-payloadLen:]
	binary.BigEndian.PutUint32(frame[0:], uint32(payloadLen))
	binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(frame[frameHeaderLen:], castagnoli))
}

// Append stages one admitted record and returns once it is group-committed
// to the active segment via write(2). Safe for concurrent use; concurrent
// appenders share one syscall per commit round.
func (l *Log) Append(seq uint64, rec []byte) error {
	l.mu.Lock()
	if err := l.stageLocked(func(buf []byte) []byte { return frameRecord(buf, seq, rec) }, seq); err != nil {
		l.mu.Unlock()
		return err
	}
	return l.commitLocked()
}

// AppendBatch stages a batch of records with consecutive sequence numbers
// starting at firstSeq and group-commits them as one unit — the bulk
// append path (replayed surges, batching benchmarks, source adapters that
// already hold a batch).
func (l *Log) AppendBatch(firstSeq uint64, recs [][]byte) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	err := l.stageLocked(func(buf []byte) []byte {
		for i, rec := range recs {
			buf = frameRecord(buf, firstSeq+uint64(i), rec)
		}
		return buf
	}, firstSeq+uint64(len(recs))-1)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	return l.commitLocked()
}

// AppendWatermark durably records that every record seq at or below w has
// completed processing. Recovery replays only records above the highest
// watermark; Prune uses it to retire whole segments.
func (l *Log) AppendWatermark(w uint64) error {
	l.mu.Lock()
	if err := l.stageLocked(func(buf []byte) []byte { return frameWatermark(buf, w) }, 0); err != nil {
		l.mu.Unlock()
		return err
	}
	if w > l.watermark {
		l.watermark = w
	}
	return l.commitLocked()
}

// stageLocked frames into the staging buffer under l.mu.
func (l *Log) stageLocked(frame func([]byte) []byte, maxSeq uint64) error {
	if l.closed {
		return ErrClosed
	}
	if l.werr != nil {
		return l.werr
	}
	before := len(l.buf)
	l.buf = frame(l.buf)
	l.staged += int64(len(l.buf) - before)
	if maxSeq > l.tailSeq {
		l.tailSeq = maxSeq
	}
	return nil
}

// commitLocked is the group-commit rendezvous: the caller's frames are
// staged at offset l.staged; it waits until a leader's write covers them,
// becoming the leader itself when none is in flight. Called with l.mu
// held; returns with it released.
func (l *Log) commitLocked() error {
	target := l.staged
	for l.written < target && l.werr == nil {
		if l.writing {
			l.cond.Wait()
			continue
		}
		// Leader: take everything staged (our frames and any follower's),
		// write it in one syscall, then release the cohort.
		l.writing = true
		batch := l.buf
		end := l.staged
		l.buf = l.spare[:0]
		l.mu.Unlock()

		_, werr := l.f.Write(batch)
		if werr == nil {
			l.fileSize += int64(len(batch))
			now := time.Now()
			if l.opts.SyncEvery < 0 || now.Sub(l.lastSync) >= l.opts.SyncEvery {
				werr = l.f.Sync()
				l.lastSync = now
			}
		}

		l.mu.Lock()
		l.spare = batch[:0]
		l.writing = false
		if werr != nil {
			// A failed write leaves the segment tail undefined; poison the
			// log rather than acknowledge into the void.
			l.werr = fmt.Errorf("wal: append failed: %w", werr)
		} else {
			l.written = end
			if l.fileSize >= l.opts.SegmentBytes {
				if rerr := l.rotateLocked(); rerr != nil {
					l.werr = fmt.Errorf("wal: segment rotation failed: %w", rerr)
				}
			}
		}
		l.cond.Broadcast()
	}
	err := l.werr
	l.mu.Unlock()
	return err
}

// Sync forces an fsync of the active segment regardless of cadence.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.werr != nil {
		return l.werr
	}
	l.lastSync = time.Now()
	return l.f.Sync()
}

// Prune deletes closed segments whose every record seq is at or below w —
// the retention side of the ack watermark. The active segment is never
// pruned. It returns how many segment files were removed.
func (l *Log) Prune(w uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segments) > 0 && l.segments[0].maxSeq <= w {
		if err := os.Remove(l.segments[0].path); err != nil {
			return removed, err
		}
		l.segments = l.segments[1:]
		removed++
	}
	return removed, nil
}

// TailSeq reports the highest record seq appended or recovered.
func (l *Log) TailSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailSeq
}

// Watermark reports the highest ack watermark appended or recovered.
func (l *Log) Watermark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.watermark
}

// Segments reports the number of live segment files (closed plus active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments) + 1
}

// Unacked returns the records recovery found above the last watermark —
// admitted, possibly never completed — in ascending seq order, and
// releases the recovery buffer. Call once, re-inject through the spout
// path, and treat re-delivery of a completed-but-past-watermark record as
// the documented at-least-once duplicate window.
func (l *Log) Unacked() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.unacked
	l.unacked = nil
	return out
}

// Close flushes staged frames, fsyncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Let any in-flight leader finish its write(2) before touching the
	// file; it holds no lock while writing.
	for l.writing {
		l.cond.Wait()
	}
	// Flush anything staged by appenders that have not committed yet (no
	// waiter is abandoned: closed is only set under the same mutex).
	var err error
	if l.staged > l.written && l.werr == nil {
		if _, werr := l.f.Write(l.buf); werr != nil {
			err = werr
		} else {
			l.written = l.staged
		}
	}
	l.closed = true
	if l.werr != nil && err == nil {
		err = l.werr
	}
	if serr := l.f.Sync(); serr != nil && err == nil {
		err = serr
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}
