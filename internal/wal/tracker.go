// Tracker: turns out-of-order per-batch completion callbacks from the
// engine into the contiguous ack watermark the log compacts against.

package wal

import "sync"

// Tracker computes the contiguous completion watermark over record
// sequence numbers. Deliveries are registered as FIFO ranges (the gate
// assigns seqs in ring-push order and the spout drains the ring in that
// same order, so ranges arrive with ascending, gap-free bounds); the
// engine completes whole batches out of order. The watermark is the
// largest W such that every seq <= W belongs to a completed range — the
// safe compaction point: a record at or below it has provably been
// processed, so its WAL frame is dead weight.
type Tracker struct {
	mu        sync.Mutex
	watermark uint64   // every seq <= watermark completed
	next      uint64   // first seq not yet covered by a delivered range
	pending   []crange // delivered, not yet completed, ascending by start
}

// crange is one delivered [start, end] batch and its completion state.
type crange struct {
	start, end uint64
	done       bool
}

// NewTracker returns a tracker whose watermark starts at w (the recovered
// log watermark: everything at or below it already completed in a prior
// life).
func NewTracker(w uint64) *Tracker {
	return &Tracker{watermark: w, next: w + 1}
}

// Deliver registers that the contiguous batch ending at seq `end` has
// been handed to the engine and returns the completion callback for it.
// Ranges must be delivered in FIFO order (each call covers [next, end]).
// The callback is safe to invoke from any goroutine, exactly once.
func (t *Tracker) Deliver(end uint64) func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if end < t.next {
		// An empty or stale range completes immediately; hand back a no-op.
		return func() {}
	}
	t.pending = append(t.pending, crange{start: t.next, end: end})
	t.next = end + 1
	idx := len(t.pending) - 1
	start := t.pending[idx].start
	return func() { t.complete(start) }
}

// complete marks the range starting at start done and advances the
// watermark across every leading completed range.
func (t *Tracker) complete(start uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.pending {
		if t.pending[i].start == start {
			t.pending[i].done = true
			break
		}
	}
	for len(t.pending) > 0 && t.pending[0].done {
		t.watermark = t.pending[0].end
		t.pending = t.pending[1:]
	}
}

// Watermark reports the current contiguous completion watermark.
func (t *Tracker) Watermark() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.watermark
}

// Pending reports how many delivered ranges have not yet completed.
func (t *Tracker) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}
