package worker

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/obs"
)

// Default protocol timers. The heartbeat is deliberately fast — worker
// death must surface within a control-loop tick so churn re-arbitration
// fires while the surge is still shapeable.
const (
	// DefaultHeartbeat is the worker's heartbeat period.
	DefaultHeartbeat = 250 * time.Millisecond
	// DefaultLease is the silence window after which a worker is declared
	// dead and its machine failed.
	DefaultLease = 1200 * time.Millisecond
	// DefaultWriteTimeout bounds one frame write; a peer that cannot
	// absorb a frame in this window is treated as dead (the engine
	// replays the affected batches).
	DefaultWriteTimeout = 5 * time.Second
)

// errShuttleDead is returned by ProcessBatch once the worker connection
// failed; the engine responds by self-healing the binding.
var errShuttleDead = errors.New("worker: shuttle connection is down")

// CoordinatorConfig parameterizes the serve-side registration endpoint.
type CoordinatorConfig struct {
	// Seed is the topology seed handed to every worker, so their bolt
	// instances are bit-identical to the ones the serve process builds.
	Seed int64
	// Heartbeat and Lease are the protocol timers sent to workers;
	// zero means the defaults.
	Heartbeat time.Duration
	Lease     time.Duration
	// WriteTimeout bounds each outbound frame write.
	WriteTimeout time.Duration
	// Bind assigns a registering worker its machine identity (a cluster
	// pool machine id). An error refuses the registration.
	Bind func(worker string, pid int) (machine int, err error)
	// OnJoin fires after a worker finishes registration, outside any
	// coordinator lock.
	OnJoin func(machine int)
	// OnDeath fires when a worker's lease lapses or its connection dies,
	// after the shuttle has failed its in-flight batches.
	OnDeath func(machine int)
	// DecisionLog, when set, receives worker-join/worker-death records
	// (worker name, machine id) as the lease lifecycle turns over.
	DecisionLog *obs.Log
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.Lease <= 0 {
		c.Lease = DefaultLease
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	return c
}

// Coordinator accepts worker registrations and keeps one Shuttle per live
// worker. It is the serve-side half of the worker protocol; the cluster
// wiring (machine ids, churn) stays behind the Bind/OnDeath callbacks so
// the coordinator itself has no scheduler dependency.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	workers map[int]*Shuttle
	joined  *sync.Cond // signaled on every join/death
	closed  bool
	wg      sync.WaitGroup

	// Cumulative lease-lifecycle counters, exported via /metrics.
	joins  atomic.Int64
	deaths atomic.Int64
}

// NewCoordinator builds a coordinator; call Serve with a listener to
// start accepting workers.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{cfg: cfg.withDefaults(), workers: make(map[int]*Shuttle)}
	c.joined = sync.NewCond(&c.mu)
	return c
}

// Serve accepts worker connections on l until the listener closes. Each
// connection runs its own registration handshake and reader goroutine;
// Serve itself blocks, so callers run it on a goroutine.
func (c *Coordinator) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c.wg.Add(1)
		go c.handle(conn)
	}
}

// handle runs one worker connection: hello/welcome handshake, then the
// reader loop that dispatches results and renews the lease.
func (c *Coordinator) handle(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	// Registration must complete within one lease window.
	_ = conn.SetReadDeadline(time.Now().Add(c.cfg.Lease))
	payload, err := readFrame(conn, nil)
	if err != nil || len(payload) == 0 || payload[0] != kindHello {
		return
	}
	var hello helloMsg
	if err := decodeJSONBody(payload, &hello); err != nil {
		return
	}
	if c.cfg.Bind == nil {
		return
	}
	machine, err := c.cfg.Bind(hello.Worker, hello.Pid)
	if err != nil {
		return
	}
	welcome := welcomeMsg{
		Machine:     machine,
		Seed:        c.cfg.Seed,
		HeartbeatMS: c.cfg.Heartbeat.Milliseconds(),
		LeaseMS:     c.cfg.Lease.Milliseconds(),
	}
	frame, err := appendJSONFrame(nil, kindWelcome, welcome)
	if err != nil {
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if _, err := conn.Write(frame); err != nil {
		return
	}
	s := &Shuttle{
		machine:      machine,
		conn:         conn,
		writeTimeout: c.cfg.WriteTimeout,
		pending:      make(map[uint64]func(engine.RemoteResult, error)),
	}
	if !c.register(machine, s) {
		return
	}
	c.joins.Add(1)
	c.cfg.DecisionLog.Emit(&obs.Record{Kind: obs.KindWorkerJoin,
		Peer: hello.Worker, To: machine})
	if c.cfg.OnJoin != nil {
		c.cfg.OnJoin(machine)
	}
	// The reader is THE serializer: every done callback — result or
	// failure — runs here, so the engine's per-executor appliers never
	// race.
	s.readLoop(c.cfg.Lease)
	c.unregister(machine, s)
	c.deaths.Add(1)
	c.cfg.DecisionLog.Emit(&obs.Record{Kind: obs.KindWorkerDeath,
		Peer: hello.Worker, To: machine})
	if c.cfg.OnDeath != nil {
		c.cfg.OnDeath(machine)
	}
}

// register adds a shuttle under its machine id; a duplicate id refuses
// the newcomer (the old lease must lapse first).
func (c *Coordinator) register(machine int, s *Shuttle) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	if _, dup := c.workers[machine]; dup {
		return false
	}
	c.workers[machine] = s
	c.joined.Broadcast()
	return true
}

func (c *Coordinator) unregister(machine int, s *Shuttle) {
	c.mu.Lock()
	if c.workers[machine] == s {
		delete(c.workers, machine)
	}
	c.joined.Broadcast()
	c.mu.Unlock()
}

// Counts reports the cumulative worker joins and deaths this coordinator
// has seen — the lease-lifecycle counters behind /metrics.
func (c *Coordinator) Counts() (joins, deaths int64) {
	return c.joins.Load(), c.deaths.Load()
}

// Shuttle returns the live transport for a machine, or nil — callers bind
// executors locally when a machine has no worker behind it.
func (c *Coordinator) Shuttle(machine int) *Shuttle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[machine]
}

// Remote adapts Shuttle to the engine's binding API: it returns the
// machine's transport as a RemoteExecutor, nil (bind local) when the
// machine has no live worker.
func (c *Coordinator) Remote(machine int) engine.RemoteExecutor {
	if s := c.Shuttle(machine); s != nil {
		return s
	}
	return nil
}

// DropWorker severs a machine's worker connection, if one is live: the
// reader fails its in-flight batches and the death path runs exactly as
// if the process had died. The serve wiring routes pool machine kills
// here, so a scripted `Fail` revokes a real worker's lease.
func (c *Coordinator) DropWorker(machine int) bool {
	s := c.Shuttle(machine)
	if s == nil {
		return false
	}
	s.shutdown()
	return true
}

// Workers reports the connected machine ids in ascending order.
func (c *Coordinator) Workers() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.workers))
	for id := range c.workers {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// WaitWorkers blocks until at least n workers are registered, or the
// timeout expires.
func (c *Coordinator) WaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.joined.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.workers) < n && !c.closed {
		if time.Now().After(deadline) {
			return fmt.Errorf("worker: %d of %d workers registered before timeout", len(c.workers), n)
		}
		c.joined.Wait()
	}
	if len(c.workers) < n {
		return fmt.Errorf("worker: coordinator closed with %d of %d workers", len(c.workers), n)
	}
	return nil
}

// Close fails every live shuttle and stops accepting work. The listener
// passed to Serve is owned by the caller and closed separately.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	shuttles := make([]*Shuttle, 0, len(c.workers))
	for _, s := range c.workers {
		shuttles = append(shuttles, s)
	}
	c.joined.Broadcast()
	c.mu.Unlock()
	for _, s := range shuttles {
		s.shutdown()
	}
	c.wg.Wait()
}

// Shuttle is the framed TCP transport to one worker process. It
// implements engine.RemoteExecutor: batches go out with a sequence number,
// results come back on the same connection, and the reader goroutine —
// the single place done callbacks run — matches them up.
type Shuttle struct {
	machine      int
	conn         net.Conn
	writeTimeout time.Duration

	writeMu sync.Mutex
	wbuf    []byte

	seq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]func(engine.RemoteResult, error)
	failed  error
}

// Machine reports the pool machine id this shuttle embodies.
func (s *Shuttle) Machine() int { return s.machine }

// ProcessBatch implements engine.RemoteExecutor: encode, register the
// completion, write the frame. A write error does not invoke done inline —
// it closes the connection and lets the reader goroutine fail all pending
// batches, preserving the single-serializer contract.
func (s *Shuttle) ProcessBatch(bolt string, items []engine.RemoteItem, done func(engine.RemoteResult, error)) error {
	seq := s.seq.Add(1)
	s.writeMu.Lock()
	frame, err := appendBatchFrame(s.wbuf[:0], seq, bolt, items)
	if err != nil {
		s.writeMu.Unlock()
		// Encode refusal (unsupported payload type): the batch never
		// left, the engine keeps the items and degrades to local.
		return err
	}
	s.wbuf = frame
	// Register before writing: the result can race back before Write
	// returns.
	s.mu.Lock()
	if s.failed != nil {
		s.mu.Unlock()
		s.writeMu.Unlock()
		return errShuttleDead
	}
	s.pending[seq] = done
	s.mu.Unlock()
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
	_, werr := s.conn.Write(frame)
	s.writeMu.Unlock()
	if werr != nil {
		// The batch is registered: closing the connection makes the
		// reader fail it (done runs exactly once, on the reader).
		_ = s.conn.Close()
	}
	return nil
}

// readLoop drains the connection: results resolve their pending batch,
// heartbeats renew the lease (the read deadline). On any read error every
// pending batch fails — serially, on this goroutine.
func (s *Shuttle) readLoop(lease time.Duration) {
	var buf []byte
	var res resultMsg
	var err error
	for {
		_ = s.conn.SetReadDeadline(time.Now().Add(lease))
		buf, err = readFrame(s.conn, buf)
		if err != nil {
			break
		}
		if len(buf) == 0 {
			continue
		}
		switch buf[0] {
		case kindHeartbeat:
			// The successful read already renewed the lease.
		case kindResult:
			if derr := decodeResult(buf, &res); derr != nil {
				err = derr
				goto out
			}
			s.mu.Lock()
			done := s.pending[res.Seq]
			delete(s.pending, res.Seq)
			s.mu.Unlock()
			if done != nil {
				done(engine.RemoteResult{
					Emitted:        res.Emitted,
					Served:         res.Served,
					Sampled:        res.Sampled,
					BusyNanos:      res.BusyNanos,
					BusySqMicros:   res.BusySqMicros,
					Errors:         res.Errors,
					TraceIdx:       res.Traced,
					TraceWaitNS:    res.WaitNS,
					TraceServiceNS: res.ServiceNS,
				}, nil)
			}
		default:
			err = fmt.Errorf("worker: unexpected frame kind 0x%02x from worker %d", buf[0], s.machine)
			goto out
		}
	}
out:
	s.fail(err)
}

// fail marks the shuttle dead and fails every pending batch, in sequence
// order, on the calling goroutine (always the reader).
func (s *Shuttle) fail(cause error) {
	if cause == nil {
		cause = errShuttleDead
	}
	s.mu.Lock()
	if s.failed == nil {
		s.failed = cause
	}
	pend := s.pending
	s.pending = make(map[uint64]func(engine.RemoteResult, error))
	s.mu.Unlock()
	_ = s.conn.Close()
	seqs := make([]uint64, 0, len(pend))
	for seq := range pend {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		pend[seq](engine.RemoteResult{}, fmt.Errorf("worker: machine %d connection lost: %w", s.machine, cause))
	}
}

// shutdown closes the connection; the reader goroutine then fails the
// in-flight batches and the coordinator unregisters the shuttle.
func (s *Shuttle) shutdown() { _ = s.conn.Close() }
