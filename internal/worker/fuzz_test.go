package worker

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/drs-repro/drs/internal/engine"
)

// FuzzWorkerFrame throws arbitrary byte streams at the shuttle's frame
// reader and payload decoders — torn frames, oversized length prefixes,
// flipped CRCs, forged counts, unknown kinds and tags. The invariants: no
// panic, no over-allocation (forged counts are rejected against the
// payload size before any allocation), and every *accepted* batch or
// result payload is canonical — re-encoding the decoded message reproduces
// the input bytes exactly, so a decode can never quietly reinterpret a
// frame.
func FuzzWorkerFrame(f *testing.F) {
	// Seed corpus: one valid frame of each kind, plus torn/flipped/forged
	// variants of the data frames.
	b := testBatch()
	batchFrame, err := appendBatchFrame(nil, b.Seq, b.Bolt, b.Items)
	if err != nil {
		f.Fatal(err)
	}
	r := testResult()
	resultFrame, err := appendResultFrame(nil, &r)
	if err != nil {
		f.Fatal(err)
	}
	bt := testBatchTraced()
	tracedBatchFrame, err := appendBatchFrame(nil, bt.Seq, bt.Bolt, bt.Items)
	if err != nil {
		f.Fatal(err)
	}
	rt := testResult()
	rt.Traced = []uint32{0, 2}
	rt.WaitNS = []int64{1500, 90}
	rt.ServiceNS = []int64{42000, 7}
	tracedResultFrame, err := appendResultFrame(nil, &rt)
	if err != nil {
		f.Fatal(err)
	}
	helloFrame, err := appendJSONFrame(nil, kindHello, helloMsg{Worker: "w0", Pid: 1})
	if err != nil {
		f.Fatal(err)
	}
	welcomeFrame, err := appendJSONFrame(nil, kindWelcome, welcomeMsg{Machine: 1, Seed: 7, HeartbeatMS: 100, LeaseMS: 400})
	if err != nil {
		f.Fatal(err)
	}
	hbFrame, err := appendHeartbeatFrame(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batchFrame)
	f.Add(resultFrame)
	f.Add(tracedBatchFrame)
	f.Add(tracedResultFrame)
	f.Add(helloFrame)
	f.Add(welcomeFrame)
	f.Add(hbFrame)
	f.Add(append(append([]byte(nil), batchFrame...), resultFrame...)) // two frames back to back
	f.Add(batchFrame[:len(batchFrame)-3])                             // torn payload
	f.Add(batchFrame[:5])                                             // torn header
	flipped := append([]byte(nil), resultFrame...)
	flipped[len(flipped)-1] ^= 0xFF
	f.Add(flipped) // CRC mismatch
	forged := append([]byte(nil), batchFrame...)
	forged[0], forged[1] = 0xFF, 0xFF // absurd length prefix
	f.Add(forged)
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		var buf []byte
		for {
			var err error
			buf, err = readFrame(rd, buf)
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
					errors.Is(err, ErrBadCRC) || errors.Is(err, ErrFrameTooBig) {
					return
				}
				t.Fatalf("unexpected frame error class: %v", err)
			}
			payload := buf
			if len(payload) == 0 {
				continue // empty payload: valid frame, no kind — ignored
			}
			switch payload[0] {
			case kindBatch:
				var m batchMsg
				if decodeBatch(payload, &m) == nil {
					reencoded, err := appendBatchFrame(nil, m.Seq, m.Bolt, m.Items)
					if err != nil {
						t.Fatalf("accepted batch failed to re-encode: %v", err)
					}
					if !bytes.Equal(reencoded[8:], payload) {
						t.Fatalf("batch decode is not canonical:\n in: %x\nout: %x", payload, reencoded[8:])
					}
				}
			case kindResult:
				var m resultMsg
				if decodeResult(payload, &m) == nil {
					reencoded, err := appendResultFrame(nil, &m)
					if err != nil {
						t.Fatalf("accepted result failed to re-encode: %v", err)
					}
					if !bytes.Equal(reencoded[8:], payload) {
						t.Fatalf("result decode is not canonical:\n in: %x\nout: %x", payload, reencoded[8:])
					}
				}
			case kindHello:
				var m helloMsg
				_ = decodeJSONBody(payload, &m)
			case kindWelcome:
				var m welcomeMsg
				_ = decodeJSONBody(payload, &m)
			case kindHeartbeat:
				// No body.
			}
			// Regardless of kind, decoded values must round-trip through
			// the engine types without panicking.
			_ = engine.Values(nil)
		}
	})
}
