package worker

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/engine"
)

// testCluster is a loopback coordinator with machine-id assignment and
// death recording.
type testCluster struct {
	t    *testing.T
	co   *Coordinator
	ln   net.Listener
	mu   sync.Mutex
	next int
	dead []int
}

func startCluster(t *testing.T, cfg CoordinatorConfig) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, next: 1} // machine 0 is the "serve process"
	cfg.Bind = func(worker string, pid int) (int, error) {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		id := tc.next
		tc.next++
		return id, nil
	}
	prevDeath := cfg.OnDeath
	cfg.OnDeath = func(machine int) {
		tc.mu.Lock()
		tc.dead = append(tc.dead, machine)
		tc.mu.Unlock()
		if prevDeath != nil {
			prevDeath(machine)
		}
	}
	tc.co = NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.ln = ln
	go tc.co.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		tc.co.Close()
	})
	return tc
}

func (tc *testCluster) deaths() []int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return append([]int(nil), tc.dead...)
}

// doublerBolts hosts one bolt "work" that emits each input value twice.
func doublerBolts(int64) (map[string]engine.BoltFactory, error) {
	return map[string]engine.BoltFactory{
		"work": func(task int) engine.Bolt {
			return engine.BoltFunc(func(tu engine.Tuple, emit engine.Emit) error {
				emit(engine.Values{tu.Values[0]})
				emit(engine.Values{tu.Values[0]})
				return nil
			})
		},
	}, nil
}

func dialWorker(t *testing.T, tc *testCluster, name string) *Worker {
	t.Helper()
	return dialWorkerBolts(t, tc, name, doublerBolts)
}

func dialWorkerBolts(t *testing.T, tc *testCluster, name string, build func(int64) (map[string]engine.BoltFactory, error)) *Worker {
	t.Helper()
	w, err := Dial(Config{Addr: tc.ln.Addr().String(), Name: name, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run() }()
	t.Cleanup(func() {
		w.Close()
		<-done
	})
	return w
}

// TestShuttleProcessBatch drives batches straight through the transport —
// no engine — and checks results, sequencing and aggregates.
func TestShuttleProcessBatch(t *testing.T) {
	tc := startCluster(t, CoordinatorConfig{Seed: 7})
	w := dialWorker(t, tc, "w1")
	if w.Seed() != 7 {
		t.Fatalf("seed = %d, want 7", w.Seed())
	}
	if err := tc.co.WaitWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	s := tc.co.Shuttle(w.Machine())
	if s == nil {
		t.Fatal("no shuttle for registered worker")
	}
	const batches = 8
	var wg sync.WaitGroup
	results := make([]engine.RemoteResult, batches)
	errs := make([]error, batches)
	for b := 0; b < batches; b++ {
		wg.Add(1)
		items := []engine.RemoteItem{
			{Task: 0, Values: engine.Values{b}},
			{Task: 1, Values: engine.Values{b * 10}},
		}
		idx := b
		err := s.ProcessBatch("work", items, func(res engine.RemoteResult, err error) {
			// Results are borrowed; copy what the assertion needs.
			cp := res
			cp.Emitted = append([][]engine.Values(nil), res.Emitted...)
			results[idx], errs[idx] = cp, err
			wg.Done()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for b := 0; b < batches; b++ {
		if errs[b] != nil {
			t.Fatalf("batch %d: %v", b, errs[b])
		}
		res := results[b]
		if res.Served != 2 || len(res.Emitted) != 2 {
			t.Fatalf("batch %d: served %d emitted %d", b, res.Served, len(res.Emitted))
		}
		for i, emits := range res.Emitted {
			if len(emits) != 2 {
				t.Fatalf("batch %d item %d: %d emissions, want 2", b, i, len(emits))
			}
		}
		if res.BusyNanos < 0 || res.Sampled != 2 {
			t.Fatalf("batch %d: bad aggregates %+v", b, res)
		}
	}
}

// TestShuttleUnhostedBolt: a batch for a bolt the worker does not host
// kills the connection (protocol error) and fails the pending batch.
func TestShuttleUnhostedBolt(t *testing.T) {
	tc := startCluster(t, CoordinatorConfig{})
	w := dialWorker(t, tc, "w1")
	if err := tc.co.WaitWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	s := tc.co.Shuttle(w.Machine())
	got := make(chan error, 1)
	err := s.ProcessBatch("nope", []engine.RemoteItem{{Task: 0, Values: engine.Values{1}}},
		func(_ engine.RemoteResult, err error) { got <- err })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("batch for unhosted bolt succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending batch never failed")
	}
}

// TestLeaseRevocation registers a raw connection that never heartbeats;
// the coordinator must declare it dead within the lease window.
func TestLeaseRevocation(t *testing.T) {
	tc := startCluster(t, CoordinatorConfig{
		Heartbeat: 30 * time.Millisecond,
		Lease:     150 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", tc.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, err := appendJSONFrame(nil, kindHello, helloMsg{Worker: "silent", Pid: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(conn, nil); err != nil { // welcome
		t.Fatal(err)
	}
	if err := tc.co.WaitWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Never heartbeat; the lease must lapse.
	deadline := time.Now().Add(3 * time.Second)
	for len(tc.deaths()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never revoked")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tc.co.Shuttle(1) != nil {
		t.Fatal("dead worker still registered")
	}
}

// TestWorkerCloseFiresDeath: an orderly worker shutdown surfaces as a
// death (the serve side treats any disconnect as machine failure).
func TestWorkerCloseFiresDeath(t *testing.T) {
	tc := startCluster(t, CoordinatorConfig{})
	w, err := Dial(Config{Addr: tc.ln.Addr().String(), Name: "w1", Build: doublerBolts})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run() }()
	if err := tc.co.WaitWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	w.Close()
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for len(tc.deaths()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker close never surfaced as death")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEngineOverShuttle binds a live topology's executors to a real worker
// over loopback TCP and checks the books balance exactly as in-process.
func TestEngineOverShuttle(t *testing.T) {
	tc := startCluster(t, CoordinatorConfig{})
	w := dialWorker(t, tc, "w1")
	if err := tc.co.WaitWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	const n = 400
	var mu sync.Mutex
	seen := 0
	topo, err := engine.NewTopology().
		Spout("src", 1, func(int) engine.Spout { return countSpout(n) }).
		Bolt("work", 4, func(int) engine.Bolt {
			return engine.BoltFunc(func(tu engine.Tuple, emit engine.Emit) error {
				emit(engine.Values{tu.Values[0]})
				emit(engine.Values{tu.Values[0]})
				return nil
			})
		}).
		Bolt("sink", 4, func(int) engine.Bolt {
			return engine.BoltFunc(func(engine.Tuple, engine.Emit) error {
				mu.Lock()
				seen++
				mu.Unlock()
				return nil
			})
		}).
		Shuffle("src", "work").
		Shuffle("work", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{Alloc: map[string]int{"work": 2, "sink": 2}, QuiesceTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()
	// The first two slots ("work", declared first) land on the worker
	// machine; the placement then runs out of slots, so "sink" degrades
	// to local — exactly right, since the worker only hosts "work".
	plan := ApplyPlacement(run, run.Allocation(),
		map[int]int{w.Machine(): 2}, 0, tc.co.Remote)
	if plan.Errors != 0 {
		t.Fatalf("placement errors: %+v", plan)
	}
	if got, _ := run.RemoteBound("work"); got != 2 {
		t.Fatalf("work RemoteBound = %d, want 2", got)
	}
	if got, _ := run.RemoteBound("sink"); got != 0 {
		t.Fatalf("sink RemoteBound = %d, want 0", got)
	}
	if plan.Bound[w.Machine()] != 2 || plan.Local != 2 {
		t.Fatalf("plan = %+v, want 2 on machine %d and 2 local", plan, w.Machine())
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		count, _ := run.Completions()
		if count >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("completions %d/%d — tuples lost over the shuttle", count, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	got := seen
	mu.Unlock()
	if got != 2*n {
		t.Fatalf("sink saw %d tuples, want %d", got, 2*n)
	}
	// Re-applying the identical placement is a no-op (idempotent bindings).
	again := ApplyPlacement(run, run.Allocation(),
		map[int]int{w.Machine(): 2}, 0, tc.co.Remote)
	if again.Errors != 0 || again.Bound[w.Machine()] != 2 {
		t.Fatalf("re-apply plan = %+v", again)
	}
	if err := run.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// countSpout emits 0..n-1 then idles.
func countSpout(n int) engine.Spout {
	return spoutFunc(func(ctx engine.SpoutContext) error {
		for i := 0; i < n; i++ {
			select {
			case <-ctx.Done():
				return nil
			default:
			}
			ctx.Emit(engine.Values{i})
		}
		<-ctx.Done()
		return nil
	})
}

// spoutFunc adapts a function to engine.Spout.
type spoutFunc func(engine.SpoutContext) error

// Run implements engine.Spout.
func (f spoutFunc) Run(ctx engine.SpoutContext) error { return f(ctx) }
