// Package worker is the distributed half of the engine: a worker daemon
// hosts bolt executors in its own process, and a serve-side coordinator
// registers workers, leases them machine identities from the cluster pool,
// and shuttles tuple batches to them over TCP.
//
// The wire protocol reuses the repo's framing idioms: every frame is
//
//	[u32 length][u32 crc32c(payload)][payload]
//
// (the ingest front door's length prefix plus the WAL's Castagnoli
// checksum), and the payload's first byte is the frame kind. Control
// frames (hello, welcome) are small and JSON-encoded; data frames (batch,
// result) use a compact binary layout with per-value type tags, encoded
// into reused buffers so the steady shuttle path allocates nothing on the
// send side. Decoding is strict — unknown kinds, unknown tags, truncated
// bodies, forged counts and trailing garbage are all errors — which is what
// lets the fuzz harness assert "any byte stream either decodes cleanly or
// errors, never panics, never over-allocates".
package worker

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"github.com/drs-repro/drs/internal/engine"
)

// MaxFrameBytes bounds one shuttle frame. A batch of RemoteBatchCap tuples
// with generous payloads fits far under this; anything larger is a corrupt
// or hostile length prefix.
const MaxFrameBytes = 16 << 20

// Frame kinds (first payload byte).
const (
	kindHello     = 0x01 // worker -> serve: JSON helloMsg
	kindWelcome   = 0x02 // serve -> worker: JSON welcomeMsg
	kindHeartbeat = 0x03 // worker -> serve: empty body, lease renewal
	kindBatch     = 0x04 // serve -> worker: tuple batch for one bolt
	kindResult    = 0x05 // worker -> serve: emissions + probe aggregates
)

// Value type tags of the binary tuple codec.
const (
	tagNil    = 0x00
	tagInt    = 0x01 // 8-byte two's-complement big endian
	tagInt64  = 0x02
	tagUint64 = 0x03
	tagFloat  = 0x04 // IEEE-754 bits, big endian
	tagTrue   = 0x05
	tagFalse  = 0x06
	tagString = 0x07 // u32 length + bytes
	tagBytes  = 0x08 // u32 length + bytes
	tagStream = 0x09 // u32 length + bytes; engine stream marker (Emit.To)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadCRC reports a frame whose payload does not match its checksum.
var ErrBadCRC = errors.New("worker: frame CRC mismatch")

// ErrFrameTooBig reports a length prefix beyond MaxFrameBytes.
var ErrFrameTooBig = errors.New("worker: frame exceeds size limit")

// errTruncated reports a payload that ended before its declared contents.
var errTruncated = errors.New("worker: truncated frame payload")

// helloMsg is the worker's registration, the first frame of a connection.
type helloMsg struct {
	// Worker is the daemon's self-chosen name (diagnostics only; identity
	// is the machine id the coordinator assigns).
	Worker string `json:"worker"`
	// Pid lets the serve side report which OS process backs a machine.
	Pid int `json:"pid"`
}

// welcomeMsg is the coordinator's reply: the worker's leased identity and
// the protocol timers.
type welcomeMsg struct {
	// Machine is the cluster-pool machine id this worker now embodies.
	Machine int `json:"machine"`
	// Seed is the topology seed; the worker builds bit-identical bolt
	// instances from the shared topology file plus this seed.
	Seed int64 `json:"seed"`
	// HeartbeatMS is how often the worker must write a heartbeat frame.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// LeaseMS is the silence window after which the coordinator revokes
	// the lease and fails the machine.
	LeaseMS int64 `json:"lease_ms"`
}

// batchMsg is one shuttle batch: tuples bound for one bolt's tasks.
type batchMsg struct {
	// Seq matches a result to its batch on the answering connection.
	Seq uint64
	// Bolt names the destination bolt.
	Bolt string
	// Items are the tuples; Task selects the bolt task (its state) on the
	// worker. Traced flags ride the frame's trace block — the ascending
	// item indices the serve side wants measured individually.
	Items []engine.RemoteItem
	// arrived is stamped by the worker's read loop right after decode —
	// not wire data. Traced items measure their worker-side queue wait
	// from it: the time from frame arrival to their Process start.
	arrived time.Time
}

// resultMsg is the worker's answer to one batch.
type resultMsg struct {
	// Seq echoes the batch sequence number.
	Seq uint64
	// Emitted is index-aligned with the batch items: the payloads each
	// item's processing emitted, stream tags in-band.
	Emitted [][]engine.Values
	// Served, Sampled, BusyNanos, BusySqMicros and Errors are the
	// executor-probe aggregates measured on the worker.
	Served, Sampled, BusyNanos, BusySqMicros, Errors int64
	// Traced lists, ascending, the batch indices of items the worker timed
	// individually (the batch frame's trace block); WaitNS and ServiceNS
	// align with it — queue wait from batch arrival to Process start, and
	// the Process duration, both on the worker's clock. The trace block is
	// always encoded (possibly empty), so every frame stays canonical.
	Traced            []uint32
	WaitNS, ServiceNS []int64
}

// writeFrame frames payload (which must start at buf[8:] — use the
// append*Frame helpers) and writes it with a single Write call.
// beginFrame/finishFrame split the work so encoders can append the payload
// directly into the framed buffer.
func beginFrame(buf []byte) []byte {
	return append(buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
}

// finishFrame stamps the length and checksum of a beginFrame-built buffer.
func finishFrame(buf []byte) ([]byte, error) {
	payload := buf[8:]
	if len(payload) > MaxFrameBytes {
		return nil, ErrFrameTooBig
	}
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// readFrame reads one frame from r into buf (grown as needed, reused
// otherwise) and returns the checksum-verified payload.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr[0:4]))
	if n > MaxFrameBytes {
		return buf, ErrFrameTooBig
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, err
	}
	if crc32.Checksum(buf, castagnoli) != binary.BigEndian.Uint32(hdr[4:8]) {
		return buf, ErrBadCRC
	}
	return buf, nil
}

// appendJSONFrame builds a framed JSON control message of the given kind.
func appendJSONFrame(buf []byte, kind byte, msg any) ([]byte, error) {
	buf = append(beginFrame(buf), kind)
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, err
	}
	return finishFrame(append(buf, body...))
}

// appendHeartbeatFrame builds a framed heartbeat.
func appendHeartbeatFrame(buf []byte) ([]byte, error) {
	return finishFrame(append(beginFrame(buf), kindHeartbeat))
}

// appendBatchFrame builds a framed batch.
func appendBatchFrame(buf []byte, seq uint64, bolt string, items []engine.RemoteItem) ([]byte, error) {
	buf = append(beginFrame(buf), kindBatch)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	if len(bolt) > math.MaxUint16 {
		return nil, fmt.Errorf("worker: bolt name %d bytes long", len(bolt))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(bolt)))
	buf = append(buf, bolt...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(items)))
	for _, it := range items {
		if it.Task < 0 || it.Task > math.MaxUint32 {
			return nil, fmt.Errorf("worker: task %d out of range", it.Task)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(it.Task))
		var err error
		if buf, err = appendValues(buf, it.Values); err != nil {
			return nil, err
		}
	}
	// Trace block: the ascending indices of Traced items. Always present
	// (count may be zero) so the encoding stays canonical.
	nTraced := 0
	for _, it := range items {
		if it.Traced {
			nTraced++
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(nTraced))
	for i, it := range items {
		if it.Traced {
			buf = binary.BigEndian.AppendUint32(buf, uint32(i))
		}
	}
	return finishFrame(buf)
}

// appendResultFrame builds a framed result.
func appendResultFrame(buf []byte, res *resultMsg) ([]byte, error) {
	buf = append(beginFrame(buf), kindResult)
	buf = binary.BigEndian.AppendUint64(buf, res.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(res.Emitted)))
	for _, emits := range res.Emitted {
		if len(emits) > math.MaxUint16 {
			return nil, fmt.Errorf("worker: %d emissions from one tuple", len(emits))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(emits)))
		for _, vs := range emits {
			var err error
			if buf, err = appendValues(buf, vs); err != nil {
				return nil, err
			}
		}
	}
	for _, v := range [...]int64{res.Served, res.Sampled, res.BusyNanos, res.BusySqMicros, res.Errors} {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	// Trace block, always present: per traced item its batch index plus
	// the worker-measured wait and service durations.
	if len(res.WaitNS) != len(res.Traced) || len(res.ServiceNS) != len(res.Traced) {
		return nil, fmt.Errorf("worker: trace block misaligned: %d idx, %d wait, %d service",
			len(res.Traced), len(res.WaitNS), len(res.ServiceNS))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(res.Traced)))
	for i, idx := range res.Traced {
		buf = binary.BigEndian.AppendUint32(buf, idx)
		buf = binary.BigEndian.AppendUint64(buf, uint64(res.WaitNS[i]))
		buf = binary.BigEndian.AppendUint64(buf, uint64(res.ServiceNS[i]))
	}
	return finishFrame(buf)
}

// appendValues encodes one tuple payload: a u16 count then tagged values.
func appendValues(buf []byte, vs engine.Values) ([]byte, error) {
	if len(vs) > math.MaxUint16 {
		return nil, fmt.Errorf("worker: %d-field tuple", len(vs))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(vs)))
	for _, v := range vs {
		var err error
		if buf, err = appendValue(buf, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// appendValue encodes one tagged value. An unsupported type is an error:
// the shuttle refuses the batch and the engine self-heals the binding to a
// local executor, so exotic payloads degrade to local processing instead
// of being dropped.
func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case int:
		return binary.BigEndian.AppendUint64(append(buf, tagInt), uint64(x)), nil
	case int64:
		return binary.BigEndian.AppendUint64(append(buf, tagInt64), uint64(x)), nil
	case uint64:
		return binary.BigEndian.AppendUint64(append(buf, tagUint64), x), nil
	case float64:
		return binary.BigEndian.AppendUint64(append(buf, tagFloat), math.Float64bits(x)), nil
	case bool:
		if x {
			return append(buf, tagTrue), nil
		}
		return append(buf, tagFalse), nil
	case string:
		buf = binary.BigEndian.AppendUint32(append(buf, tagString), uint32(len(x)))
		return append(buf, x...), nil
	case []byte:
		buf = binary.BigEndian.AppendUint32(append(buf, tagBytes), uint32(len(x)))
		return append(buf, x...), nil
	default:
		if stream, ok := engine.StreamTagString(v); ok {
			buf = binary.BigEndian.AppendUint32(append(buf, tagStream), uint32(len(stream)))
			return append(buf, stream...), nil
		}
		return nil, fmt.Errorf("worker: unsupported value type %T", v)
	}
}

// wire is a strict cursor over one frame payload: every read is
// bounds-checked, and the first failure sticks.
type wire struct {
	b   []byte
	off int
	err error
}

func (c *wire) fail() {
	if c.err == nil {
		c.err = errTruncated
	}
	c.off = len(c.b)
}

func (c *wire) u8() byte {
	if c.off+1 > len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *wire) u16() uint16 {
	if c.off+2 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *wire) u32() uint32 {
	if c.off+4 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *wire) u64() uint64 {
	if c.off+8 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *wire) take(n int) []byte {
	if n < 0 || c.off+n > len(c.b) {
		c.fail()
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

// remaining reports the unread byte count — the bound used to reject
// forged element counts before allocating for them.
func (c *wire) remaining() int { return len(c.b) - c.off }

// done errors on trailing garbage, so every accepted frame is canonical.
func (c *wire) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("worker: %d trailing bytes after frame body", len(c.b)-c.off)
	}
	return nil
}

// decodeValue decodes one tagged value. Byte strings are copied out: the
// frame buffer is reused for the next read.
func (c *wire) decodeValue() any {
	switch tag := c.u8(); tag {
	case tagNil:
		return nil
	case tagInt:
		return int(c.u64())
	case tagInt64:
		return int64(c.u64())
	case tagUint64:
		return c.u64()
	case tagFloat:
		return math.Float64frombits(c.u64())
	case tagTrue:
		return true
	case tagFalse:
		return false
	case tagString:
		return string(c.take(int(c.u32())))
	case tagBytes:
		b := c.take(int(c.u32()))
		out := make([]byte, len(b))
		copy(out, b)
		return out
	case tagStream:
		return engine.StreamTagValue(string(c.take(int(c.u32()))))
	default:
		if c.err == nil {
			c.err = fmt.Errorf("worker: unknown value tag 0x%02x", tag)
			c.off = len(c.b)
		}
		return nil
	}
}

// decodeValues decodes one tuple payload into a fresh Values slice.
func (c *wire) decodeValues() engine.Values {
	n := int(c.u16())
	if n == 0 || n > c.remaining() { // every value is at least 1 byte
		if n != 0 {
			c.fail()
		}
		return nil
	}
	vs := make(engine.Values, 0, n)
	for i := 0; i < n && c.err == nil; i++ {
		vs = append(vs, c.decodeValue())
	}
	return vs
}

// decodeBatch decodes a kindBatch payload (kind byte included) into m,
// reusing m.Items capacity.
func decodeBatch(payload []byte, m *batchMsg) error {
	c := &wire{b: payload}
	if c.u8() != kindBatch {
		return errors.New("worker: not a batch frame")
	}
	m.Seq = c.u64()
	m.Bolt = string(c.take(int(c.u16())))
	n := int(c.u32())
	// A task id plus an empty value list is 6 bytes; reject counts the
	// remaining bytes cannot possibly hold before allocating.
	if n > c.remaining()/6 {
		return errTruncated
	}
	m.Items = m.Items[:0]
	for i := 0; i < n && c.err == nil; i++ {
		task := int(c.u32())
		m.Items = append(m.Items, engine.RemoteItem{Task: task, Values: c.decodeValues()})
	}
	// Trace block: strictly ascending in-range indices, or the frame is
	// rejected — a forged block can never mark items out of order.
	nt := int(c.u32())
	if nt > c.remaining()/4 {
		return errTruncated
	}
	prev := -1
	for i := 0; i < nt && c.err == nil; i++ {
		idx := int(c.u32())
		if idx <= prev || idx >= len(m.Items) {
			return fmt.Errorf("worker: trace index %d out of order or range", idx)
		}
		prev = idx
		m.Items[idx].Traced = true
	}
	return c.done()
}

// decodeResult decodes a kindResult payload (kind byte included) into m,
// reusing m.Emitted capacity.
func decodeResult(payload []byte, m *resultMsg) error {
	c := &wire{b: payload}
	if c.u8() != kindResult {
		return errors.New("worker: not a result frame")
	}
	m.Seq = c.u64()
	n := int(c.u32())
	// Each per-item emission list is at least a u16 count; the five
	// trailing aggregates take 40 bytes.
	if n > c.remaining()/2 {
		return errTruncated
	}
	m.Emitted = m.Emitted[:0]
	for i := 0; i < n && c.err == nil; i++ {
		ne := int(c.u16())
		if ne > c.remaining()/2 {
			return errTruncated
		}
		var emits []engine.Values
		if ne > 0 {
			emits = make([]engine.Values, 0, ne)
			for j := 0; j < ne && c.err == nil; j++ {
				emits = append(emits, c.decodeValues())
			}
		}
		m.Emitted = append(m.Emitted, emits)
	}
	m.Served = int64(c.u64())
	m.Sampled = int64(c.u64())
	m.BusyNanos = int64(c.u64())
	m.BusySqMicros = int64(c.u64())
	m.Errors = int64(c.u64())
	// Trace block: 20 bytes per entry, strictly ascending in-range indices.
	nt := int(c.u32())
	if nt > c.remaining()/20 {
		return errTruncated
	}
	m.Traced = m.Traced[:0]
	m.WaitNS = m.WaitNS[:0]
	m.ServiceNS = m.ServiceNS[:0]
	prev := -1
	for i := 0; i < nt && c.err == nil; i++ {
		idx := int(c.u32())
		if idx <= prev || idx >= n {
			return fmt.Errorf("worker: trace index %d out of order or range", idx)
		}
		prev = idx
		m.Traced = append(m.Traced, uint32(idx))
		m.WaitNS = append(m.WaitNS, int64(c.u64()))
		m.ServiceNS = append(m.ServiceNS, int64(c.u64()))
	}
	return c.done()
}

// decodeJSONBody unmarshals a control frame's JSON body (after the kind
// byte) strictly.
func decodeJSONBody(payload []byte, into any) error {
	if len(payload) < 1 {
		return errTruncated
	}
	return json.Unmarshal(payload[1:], into)
}
