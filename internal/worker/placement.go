package worker

import (
	"sort"

	"github.com/drs-repro/drs/internal/engine"
)

// Placement application: the cluster scheduler's slot placement (machine
// id → slot count) becomes real executor bindings. Slots are enumerated
// deterministically — bolts in declaration order, executors in index order
// — and machines fill in ascending id order, so the same placement always
// produces the same binding and re-applying after churn only moves the
// executors whose machine actually changed (BindExecutor is idempotent on
// unchanged bindings).

// BindingPlan is the resolved slot → machine assignment of one placement
// application.
type BindingPlan struct {
	// Bound counts executors bound per machine id (the local machine
	// included, bound as in-process goroutines).
	Bound map[int]int
	// Local counts executors that fell back to local goroutines because
	// their machine has no live worker (or the placement ran short).
	Local int
	// Errors counts BindExecutor refusals (stopped run).
	Errors int
}

// ApplyPlacement binds a run's executors per the scheduler's placement.
// alloc is the run's current executor allocation (bolt → count, as
// Run.Allocation returns); placement maps machine id → slot count;
// localMachine is the machine embodied by the serve process itself (its
// slots stay in-process); remote resolves a machine id to its live
// transport, nil meaning "bind local".
func ApplyPlacement(run *engine.Run, alloc map[string]int, placement map[int]int, localMachine int, remote func(machine int) engine.RemoteExecutor) BindingPlan {
	plan := BindingPlan{Bound: make(map[int]int, len(placement))}
	machines := make([]int, 0, len(placement))
	for id := range placement {
		machines = append(machines, id)
	}
	sort.Ints(machines)
	mi, left := 0, 0
	if len(machines) > 0 {
		left = placement[machines[0]]
	}
	for _, bolt := range run.BoltNames() {
		for exec := 0; exec < alloc[bolt]; exec++ {
			// Advance to the next machine with slots remaining.
			for mi < len(machines) && left == 0 {
				mi++
				if mi < len(machines) {
					left = placement[machines[mi]]
				}
			}
			var dest engine.RemoteExecutor
			machine := localMachine
			if mi < len(machines) {
				machine = machines[mi]
				left--
				if machine != localMachine && remote != nil {
					dest = remote(machine)
				}
			}
			if dest == nil && machine != localMachine {
				// No live worker behind the machine: degrade to local.
				machine = localMachine
			}
			if err := run.BindExecutor(bolt, exec, dest); err != nil {
				plan.Errors++
				continue
			}
			plan.Bound[machine]++
			if machine == localMachine {
				plan.Local++
			}
		}
	}
	return plan
}
