package worker

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"github.com/drs-repro/drs/internal/engine"
)

func testBatch() batchMsg {
	return batchMsg{
		Seq:  42,
		Bolt: "fan",
		Items: []engine.RemoteItem{
			{Task: 0, Values: engine.Values{7, "alpha", []byte{1, 2, 3}}},
			{Task: 3, Values: engine.Values{int64(-9), uint64(1 << 60), 2.5, true, false, nil}},
			{Task: 9, Values: engine.Values{engine.StreamTagValue("e1"), 0}},
		},
	}
}

func testResult() resultMsg {
	return resultMsg{
		Seq: 42,
		Emitted: [][]engine.Values{
			{{1, "x"}, {engine.StreamTagValue("e0"), 2}},
			nil,
			{{[]byte("payload")}},
		},
		Served: 3, Sampled: 1, BusyNanos: 12345, BusySqMicros: 99, Errors: 1,
	}
}

// TestBatchRoundTrip encodes a batch, reads it back through the frame
// reader, and checks field-for-field equality plus byte-level canonical
// re-encoding.
func TestBatchRoundTrip(t *testing.T) {
	in := testBatch()
	frame, err := appendBatchFrame(nil, in.Seq, in.Bolt, in.Items)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out batchMsg
	if err := decodeBatch(payload, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
	again, err := appendBatchFrame(nil, out.Seq, out.Bolt, out.Items)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("re-encoding is not canonical")
	}
}

// TestResultRoundTrip does the same for result frames.
func TestResultRoundTrip(t *testing.T) {
	in := testResult()
	frame, err := appendResultFrame(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out resultMsg
	if err := decodeResult(payload, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}

// TestControlRoundTrip covers the JSON hello/welcome frames and the
// heartbeat.
func TestControlRoundTrip(t *testing.T) {
	hello := helloMsg{Worker: "w1", Pid: 4242}
	frame, err := appendJSONFrame(nil, kindHello, hello)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != kindHello {
		t.Fatalf("kind = %#x, want hello", payload[0])
	}
	var gotHello helloMsg
	if err := decodeJSONBody(payload, &gotHello); err != nil {
		t.Fatal(err)
	}
	if gotHello != hello {
		t.Fatalf("hello round trip: %+v != %+v", gotHello, hello)
	}
	welcome := welcomeMsg{Machine: 3, Seed: -7, HeartbeatMS: 250, LeaseMS: 1000}
	frame, err = appendJSONFrame(nil, kindWelcome, welcome)
	if err != nil {
		t.Fatal(err)
	}
	if payload, err = readFrame(bytes.NewReader(frame), nil); err != nil {
		t.Fatal(err)
	}
	var gotWelcome welcomeMsg
	if err := decodeJSONBody(payload, &gotWelcome); err != nil {
		t.Fatal(err)
	}
	if gotWelcome != welcome {
		t.Fatalf("welcome round trip: %+v != %+v", gotWelcome, welcome)
	}
	if frame, err = appendHeartbeatFrame(nil); err != nil {
		t.Fatal(err)
	}
	if payload, err = readFrame(bytes.NewReader(frame), nil); err != nil {
		t.Fatal(err)
	}
	if len(payload) != 1 || payload[0] != kindHeartbeat {
		t.Fatalf("heartbeat payload = %v", payload)
	}
}

// TestFrameTampering flips bits, tears frames and forges lengths; the
// reader must reject each without panicking.
func TestFrameTampering(t *testing.T) {
	in := testBatch()
	frame, err := appendBatchFrame(nil, in.Seq, in.Bolt, in.Items)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("crc flip", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[len(bad)-1] ^= 0x01
		if _, err := readFrame(bytes.NewReader(bad), nil); !errors.Is(err, ErrBadCRC) {
			t.Fatalf("err = %v, want ErrBadCRC", err)
		}
	})
	t.Run("torn payload", func(t *testing.T) {
		if _, err := readFrame(bytes.NewReader(frame[:len(frame)-3]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want unexpected EOF", err)
		}
	})
	t.Run("torn header", func(t *testing.T) {
		if _, err := readFrame(bytes.NewReader(frame[:5]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want unexpected EOF", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, err := readFrame(bytes.NewReader(bad), nil); !errors.Is(err, ErrFrameTooBig) {
			t.Fatalf("err = %v, want ErrFrameTooBig", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		// Reframe a clipped payload with a valid CRC: the frame layer
		// accepts it, the batch decoder must not.
		payload, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		clipped, err := finishFrame(append(beginFrame(nil), payload[:len(payload)-2]...))
		if err != nil {
			t.Fatal(err)
		}
		got, err := readFrame(bytes.NewReader(clipped), nil)
		if err != nil {
			t.Fatal(err)
		}
		var m batchMsg
		if err := decodeBatch(got, &m); err == nil {
			t.Fatal("clipped batch decoded cleanly")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		payload, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		padded, err := finishFrame(append(append(beginFrame(nil), payload...), 0xAB))
		if err != nil {
			t.Fatal(err)
		}
		got, err := readFrame(bytes.NewReader(padded), nil)
		if err != nil {
			t.Fatal(err)
		}
		var m batchMsg
		if err := decodeBatch(got, &m); err == nil {
			t.Fatal("padded batch decoded cleanly")
		}
	})
	t.Run("forged count", func(t *testing.T) {
		payload, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		forged := append([]byte(nil), payload...)
		// The item count sits after kind(1)+seq(8)+boltLen(2)+bolt.
		off := 1 + 8 + 2 + len(testBatch().Bolt)
		forged[off], forged[off+1], forged[off+2], forged[off+3] = 0x7F, 0xFF, 0xFF, 0xFF
		var m batchMsg
		if err := decodeBatch(forged, &m); err == nil {
			t.Fatal("forged item count decoded cleanly")
		}
	})
}

// testBatchTraced is testBatch with the first and last items flagged for
// individual timing — the trace block carries {0, 2}.
func testBatchTraced() batchMsg {
	b := testBatch()
	b.Items[0].Traced = true
	b.Items[2].Traced = true
	return b
}

// TestBatchRoundTripTraced checks the trace block round-trips: traced
// flags survive encode/decode and the re-encoding stays canonical.
func TestBatchRoundTripTraced(t *testing.T) {
	in := testBatchTraced()
	frame, err := appendBatchFrame(nil, in.Seq, in.Bolt, in.Items)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out batchMsg
	if err := decodeBatch(payload, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
	again, err := appendBatchFrame(nil, out.Seq, out.Bolt, out.Items)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("re-encoding is not canonical")
	}
}

// TestResultRoundTripTraced checks the result trace block: per-item wait
// and service durations align with their indices across the wire.
func TestResultRoundTripTraced(t *testing.T) {
	in := testResult()
	in.Traced = []uint32{0, 2}
	in.WaitNS = []int64{1500, 90}
	in.ServiceNS = []int64{42000, 7}
	frame, err := appendResultFrame(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out resultMsg
	if err := decodeResult(payload, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}

// TestTraceBlockTampering forges the trace blocks: out-of-range and
// out-of-order indices, forged counts and misaligned encode inputs must
// all be rejected.
func TestTraceBlockTampering(t *testing.T) {
	t.Run("batch forged trace count", func(t *testing.T) {
		in := testBatch()
		frame, err := appendBatchFrame(nil, in.Seq, in.Bolt, in.Items)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		// The trace count is the final u32 of the payload (zero traced).
		forged := append([]byte(nil), payload...)
		off := len(forged) - 4
		forged[off], forged[off+1], forged[off+2], forged[off+3] = 0x7F, 0xFF, 0xFF, 0xFF
		var m batchMsg
		if err := decodeBatch(forged, &m); err == nil {
			t.Fatal("forged trace count decoded cleanly")
		}
	})
	t.Run("batch trace index out of range", func(t *testing.T) {
		in := testBatchTraced()
		frame, err := appendBatchFrame(nil, in.Seq, in.Bolt, in.Items)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		// The last u32 is the second traced index (2); point it past the
		// item count.
		forged := append([]byte(nil), payload...)
		forged[len(forged)-1] = 9
		var m batchMsg
		if err := decodeBatch(forged, &m); err == nil {
			t.Fatal("out-of-range trace index decoded cleanly")
		}
	})
	t.Run("batch trace index out of order", func(t *testing.T) {
		in := testBatchTraced()
		frame, err := appendBatchFrame(nil, in.Seq, in.Bolt, in.Items)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite the trace block {0, 2} as {2, 0}: same bytes, bad order.
		forged := append([]byte(nil), payload...)
		forged[len(forged)-5], forged[len(forged)-1] = 2, 0
		var m batchMsg
		if err := decodeBatch(forged, &m); err == nil {
			t.Fatal("out-of-order trace indices decoded cleanly")
		}
	})
	t.Run("result misaligned trace block refuses to encode", func(t *testing.T) {
		res := testResult()
		res.Traced = []uint32{0}
		res.WaitNS = []int64{1, 2} // one extra
		res.ServiceNS = []int64{3}
		if _, err := appendResultFrame(nil, &res); err == nil {
			t.Fatal("misaligned trace block encoded cleanly")
		}
	})
	t.Run("result trace index out of order", func(t *testing.T) {
		res := testResult()
		res.Traced = []uint32{0, 2}
		res.WaitNS = []int64{1, 2}
		res.ServiceNS = []int64{3, 4}
		frame, err := appendResultFrame(nil, &res)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Each trace entry is 20 bytes: swap the two entry indices.
		forged := append([]byte(nil), payload...)
		first, second := len(forged)-40, len(forged)-20
		forged[first+3], forged[second+3] = 2, 0
		var m resultMsg
		if err := decodeResult(forged, &m); err == nil {
			t.Fatal("out-of-order result trace indices decoded cleanly")
		}
	})
}

// TestUnsupportedValueType checks that an un-serializable payload is an
// encode error, not a panic or a silent drop.
func TestUnsupportedValueType(t *testing.T) {
	type odd struct{ X int }
	_, err := appendBatchFrame(nil, 1, "b", []engine.RemoteItem{{Task: 0, Values: engine.Values{odd{1}}}})
	if err == nil {
		t.Fatal("want encode error for unsupported type")
	}
}
