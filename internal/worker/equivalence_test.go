package worker

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/scenario"
	"github.com/drs-repro/drs/internal/sim"
)

// The equivalence harness: the same seeded scenario workload runs through
// the engine twice — once with every executor in-process, once with the
// stateful bolt's executors spread over three real worker daemons on
// loopback TCP — and the books must come out identical. Admission is a
// deterministic token bucket replayed over a recorded arrival trace, so
// the admitted/shed split is a pure function of the spec; what the test
// actually proves is that remote execution changes none of it: same
// admitted, same shed, same per-key final counts, same per-tenant
// processed tallies, zero tuples lost.

// eqEntry is one admitted tuple of the deterministic workload.
type eqEntry struct {
	tenant string
	key    int
}

// eqWorkload derives the deterministic workload from a seeded spec:
// per-tenant recorded arrival traces, token-bucket admission at 60% of
// the trace's mean rate (so the surges genuinely shed), and seeded key
// assignment.
func eqWorkload(t *testing.T, spec scenario.Spec, perTenant int) (entries []eqEntry, admitted, shed map[string]int64) {
	t.Helper()
	tl, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	admitted = make(map[string]int64)
	shed = make(map[string]int64)
	for ti, ts := range spec.Tenants {
		proc, err := tl.Arrivals(ts.Name)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := sim.RecordArrivals(proc, perTenant, uint64(spec.Seed)+uint64(ti)*101)
		if err != nil {
			t.Fatal(err)
		}
		keys := newEqRNG(uint64(spec.Seed)*7919 + uint64(ti))
		rate := trace.MeanRate() * 0.6
		const burst = 20.0
		tokens, now := burst, 0.0
		for i := 0; i < perTenant; i++ {
			gap := trace.NextInterArrival(nil)
			now += gap
			tokens += gap * rate
			if tokens > burst {
				tokens = burst
			}
			key := int(keys.next() % 128)
			if tokens >= 1 {
				tokens--
				admitted[ts.Name]++
				entries = append(entries, eqEntry{tenant: ts.Name, key: key})
			} else {
				shed[ts.Name]++
			}
		}
	}
	return entries, admitted, shed
}

// eqRNG is a tiny splitmix64 so key assignment never depends on package
// internals that might change.
type eqRNG struct{ s uint64 }

func newEqRNG(seed uint64) *eqRNG { return &eqRNG{s: seed} }

func (r *eqRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9fe
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// countBolts builds the stateful bolt the workload runs through: per-task
// running counts keyed by (tenant, key), each input emitting its key's new
// count. Both the serve process and the workers build instances from this
// same factory, so local and remote execution host identical state
// machines.
func countBolts(int64) (map[string]engine.BoltFactory, error) {
	return map[string]engine.BoltFactory{"count": newCountBolt}, nil
}

func newCountBolt(task int) engine.Bolt {
	counts := make(map[string]int)
	return engine.BoltFunc(func(tu engine.Tuple, emit engine.Emit) error {
		tenant := tu.Values[0].(string)
		key := tu.Values[1].(int)
		ck := fmt.Sprintf("%s/%d", tenant, key)
		counts[ck]++
		emit(engine.Values{tenant, key, counts[ck]})
		return nil
	})
}

// eqBooks is one run's complete accounting.
type eqBooks struct {
	admitted map[string]int64 // tenant -> admitted at the front door
	shed     map[string]int64 // tenant -> shed at the front door
	counts   map[string]int   // tenant/key -> final running count at the sink
	tally    map[string]int64 // tenant -> tuples that reached the sink
	total    int64            // completed processing trees
	failures int64            // remote bindings the engine self-healed
}

// runEq pushes the workload through a src -> count(fields by key) -> sink
// topology. remoteMachines > 0 spreads the count executors over that many
// live workers; 0 keeps everything in-process. killOne closes one worker's
// connection a quarter of the way through, so its executors fail live and
// the engine must replay and self-heal.
func runEq(t *testing.T, spec scenario.Spec, perTenant, remoteMachines int, killOne bool) eqBooks {
	t.Helper()
	entries, admitted, shed := eqWorkload(t, spec, perTenant)
	books := eqBooks{
		admitted: admitted,
		shed:     shed,
		counts:   make(map[string]int),
		tally:    make(map[string]int64),
	}
	stride := 256 // pacing: let queues drain between bursts
	if killOne {
		stride = 16 // stretch the run so the kill lands mid-stream
	}
	// The spout holds until placement is applied: tuples processed by the
	// interim local executors would leave their running counts behind on
	// rebind, and this harness is about where tuples run, not about state
	// migration (the kill path exercises mid-stream rebinding separately).
	start := make(chan struct{})
	var mu sync.Mutex
	topo, err := engine.NewTopology().
		Spout("src", 1, func(int) engine.Spout {
			return spoutFunc(func(ctx engine.SpoutContext) error {
				select {
				case <-start:
				case <-ctx.Done():
					return nil
				}
				for i, e := range entries {
					select {
					case <-ctx.Done():
						return nil
					default:
					}
					ctx.Emit(engine.Values{e.tenant, e.key})
					if i%stride == stride-1 {
						time.Sleep(time.Millisecond)
					}
				}
				<-ctx.Done()
				return nil
			})
		}).
		Bolt("count", 8, newCountBolt).
		Bolt("sink", 2, func(int) engine.Bolt {
			return engine.BoltFunc(func(tu engine.Tuple, emit engine.Emit) error {
				tenant := tu.Values[0].(string)
				key := tu.Values[1].(int)
				n := tu.Values[2].(int)
				mu.Lock()
				ck := fmt.Sprintf("%s/%d", tenant, key)
				if n > books.counts[ck] {
					books.counts[ck] = n
				}
				books.tally[tenant]++
				mu.Unlock()
				return nil
			})
		}).
		Fields("src", "count", func(v engine.Values) uint64 { return uint64(v[1].(int)) }).
		Shuffle("count", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc:          map[string]int{"count": 6, "sink": 2},
		QuiesceTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()

	var victim *Worker
	if remoteMachines > 0 {
		tc := startCluster(t, CoordinatorConfig{Seed: int64(spec.Seed)})
		placement := make(map[int]int, remoteMachines)
		for i := 0; i < remoteMachines; i++ {
			w := dialWorkerBolts(t, tc, fmt.Sprintf("w%d", i+1), countBolts)
			placement[w.Machine()] = 2
			if i == remoteMachines-1 {
				victim = w
			}
		}
		if err := tc.co.WaitWorkers(remoteMachines, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		plan := ApplyPlacement(run, run.Allocation(), placement, 0, tc.co.Remote)
		if plan.Errors != 0 {
			t.Fatalf("placement errors: %+v", plan)
		}
		if got, _ := run.RemoteBound("count"); got != 6 {
			t.Fatalf("count RemoteBound = %d, want 6", got)
		}
	}
	close(start)

	want := int64(len(entries))
	deadline := time.Now().Add(30 * time.Second)
	for {
		count, _ := run.Completions()
		if killOne && victim != nil && count >= want/4 {
			victim.Close() // mid-surge worker death: executors fail live
			victim = nil
		}
		if count >= want {
			books.total = count
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("completions %d/%d — tuples lost", count, want)
		}
		time.Sleep(time.Millisecond)
	}
	books.failures = run.ExecutorFailures()
	if err := run.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	return books
}

// TestLocalRemoteEquivalence is the harness's headline property: the
// seeded chaos scenario produces bit-identical books whether the stateful
// stage runs in-process or across three worker daemons.
func TestLocalRemoteEquivalence(t *testing.T) {
	spec := scenario.Chaos()
	const perTenant = 600
	local := runEq(t, spec, perTenant, 0, false)
	remote := runEq(t, spec, perTenant, 3, false)

	if !reflect.DeepEqual(local.admitted, remote.admitted) {
		t.Errorf("admitted books differ:\n local %v\nremote %v", local.admitted, remote.admitted)
	}
	if !reflect.DeepEqual(local.shed, remote.shed) {
		t.Errorf("shed books differ:\n local %v\nremote %v", local.shed, remote.shed)
	}
	if !reflect.DeepEqual(local.counts, remote.counts) {
		t.Errorf("processed key counts differ: %d local keys vs %d remote", len(local.counts), len(remote.counts))
	}
	if !reflect.DeepEqual(local.tally, remote.tally) {
		t.Errorf("sink tallies differ:\n local %v\nremote %v", local.tally, remote.tally)
	}
	if local.total != remote.total {
		t.Errorf("completions differ: %d local vs %d remote", local.total, remote.total)
	}
	// Cross-checks that both runs balance internally, not just mutually.
	var wantAdmitted int64
	for tenant, n := range local.admitted {
		wantAdmitted += n
		if local.shed[tenant] == 0 {
			t.Errorf("tenant %s never shed — admission gate not exercised", tenant)
		}
		if remote.tally[tenant] != n {
			t.Errorf("tenant %s: %d admitted but %d processed remotely", tenant, n, remote.tally[tenant])
		}
	}
	if remote.total != wantAdmitted {
		t.Errorf("remote completions %d != admitted %d", remote.total, wantAdmitted)
	}
	var sum int64
	for _, n := range remote.counts {
		sum += int64(n)
	}
	if sum != wantAdmitted {
		t.Errorf("final key counts sum to %d, want %d", sum, wantAdmitted)
	}
}

// TestEquivalenceUnderWorkerKill runs the same workload with a worker
// dying a quarter of the way in. Exactly-once engine accounting over an
// at-least-once transport means the guarantees weaken in one precise way:
// every admitted tuple still completes (zero lost — in-flight batches
// replay), but replays may re-process, so sink tallies become >= instead
// of ==. The engine must also record the failure and self-heal the dead
// worker's bindings.
func TestEquivalenceUnderWorkerKill(t *testing.T) {
	spec := scenario.Chaos()
	const perTenant = 600
	books := runEq(t, spec, perTenant, 3, true)

	var wantAdmitted int64
	for tenant, n := range books.admitted {
		wantAdmitted += n
		if books.tally[tenant] < n {
			t.Errorf("tenant %s: %d admitted but only %d processed — tuples lost in the kill",
				tenant, n, books.tally[tenant])
		}
	}
	if books.total < wantAdmitted {
		t.Errorf("completions %d < admitted %d", books.total, wantAdmitted)
	}
	if books.failures == 0 {
		t.Error("worker death never surfaced as an executor failure")
	}
}
