package worker

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drs-repro/drs/internal/engine"
)

// Config parameterizes one worker daemon.
type Config struct {
	// Addr is the coordinator's worker-listen address.
	Addr string
	// Name is the daemon's self-chosen name, for diagnostics.
	Name string
	// Build constructs the hosted bolt factories from the seed the
	// coordinator hands over in the welcome, so worker-side bolt
	// instances are bit-identical to the serve process's own. The map
	// key is the bolt name; the factory is called once per task, on
	// demand.
	Build func(seed int64) (map[string]engine.BoltFactory, error)
	// DialTimeout bounds the TCP connect + handshake; zero means 5s.
	DialTimeout time.Duration
}

// Worker is one connected worker daemon: it hosts bolt task instances and
// processes the batches the serve-side engine shuttles over.
type Worker struct {
	conn      net.Conn
	machine   int
	seed      int64
	heartbeat time.Duration
	factories map[string]engine.BoltFactory

	writeMu sync.Mutex
	wbuf    []byte

	mu      sync.Mutex
	hosted  map[string]*hostedBolt
	closed  bool
	readErr error

	batches atomic.Int64
	tuples  atomic.Int64
}

// hostedBolt is one bolt's worker-side runtime: a serialized processing
// goroutine (task instances hold state, so batches for one bolt never run
// concurrently) fed by the connection reader.
type hostedBolt struct {
	name      string
	factory   engine.BoltFactory
	instances map[int]engine.Bolt
	batches   chan *batchMsg
	done      chan struct{}
}

// Dial connects to the coordinator, registers, and returns the worker
// ready to Run. The welcome's seed drives cfg.Build so the hosted bolts
// match the serve process's.
func Dial(cfg Config) (*Worker, error) {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", cfg.Addr, timeout)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	_ = conn.SetDeadline(deadline)
	hello, err := appendJSONFrame(nil, kindHello, helloMsg{Worker: cfg.Name, Pid: os.Getpid()})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	payload, err := readFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if len(payload) == 0 || payload[0] != kindWelcome {
		conn.Close()
		return nil, errors.New("worker: registration refused")
	}
	var welcome welcomeMsg
	if err := decodeJSONBody(payload, &welcome); err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	factories, err := cfg.Build(welcome.Seed)
	if err != nil {
		conn.Close()
		return nil, err
	}
	hb := time.Duration(welcome.HeartbeatMS) * time.Millisecond
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	return &Worker{
		conn:      conn,
		machine:   welcome.Machine,
		seed:      welcome.Seed,
		heartbeat: hb,
		factories: factories,
		hosted:    make(map[string]*hostedBolt),
	}, nil
}

// Machine reports the pool machine id the coordinator leased to this
// worker.
func (w *Worker) Machine() int { return w.machine }

// Counts reports how many batches and tuples this worker has processed
// across all hosted bolts since it connected.
func (w *Worker) Counts() (batches, tuples int64) {
	return w.batches.Load(), w.tuples.Load()
}

// HostedBolts reports how many distinct bolts currently have a live
// worker-side runner.
func (w *Worker) HostedBolts() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.hosted)
}

// Seed reports the topology seed from the welcome.
func (w *Worker) Seed() int64 { return w.seed }

// Run drives the worker until the connection dies or Close is called:
// a heartbeat goroutine renews the lease, the read loop dispatches batches
// to per-bolt processing goroutines, and results flow back on the same
// connection. Returns nil on orderly Close, the connection error
// otherwise.
func (w *Worker) Run() error {
	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(w.heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := w.writeHeartbeat(); err != nil {
					_ = w.conn.Close() // surface the failure to the read loop
					return
				}
			}
		}
	}()
	err := w.readLoop()
	close(stop)
	hbWG.Wait()
	w.mu.Lock()
	closed := w.closed
	hosted := make([]*hostedBolt, 0, len(w.hosted))
	for _, h := range w.hosted {
		hosted = append(hosted, h)
	}
	w.mu.Unlock()
	for _, h := range hosted {
		close(h.batches)
		<-h.done
	}
	if closed {
		return nil
	}
	return err
}

// Close shuts the worker down; Run returns nil.
func (w *Worker) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	_ = w.conn.Close()
}

// readLoop decodes inbound frames and routes batches to their bolt's
// processing goroutine.
func (w *Worker) readLoop() error {
	var buf []byte
	for {
		var err error
		buf, err = readFrame(w.conn, buf)
		if err != nil {
			return err
		}
		if len(buf) == 0 {
			continue
		}
		switch buf[0] {
		case kindBatch:
			m := getBatchMsg()
			if err := decodeBatch(buf, m); err != nil {
				putBatchMsg(m)
				return fmt.Errorf("worker: bad batch frame: %w", err)
			}
			m.arrived = time.Now()
			h, err := w.boltRunner(m.Bolt)
			if err != nil {
				putBatchMsg(m)
				return err
			}
			h.batches <- m
		case kindHeartbeat:
			// Tolerated in either direction.
		default:
			return fmt.Errorf("worker: unexpected frame kind 0x%02x", buf[0])
		}
	}
}

// boltRunner returns (starting on first use) the serialized processing
// goroutine of one hosted bolt.
func (w *Worker) boltRunner(name string) (*hostedBolt, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if h, ok := w.hosted[name]; ok {
		return h, nil
	}
	factory, ok := w.factories[name]
	if !ok {
		return nil, fmt.Errorf("worker: batch for unhosted bolt %q", name)
	}
	h := &hostedBolt{
		name:      name,
		factory:   factory,
		instances: make(map[int]engine.Bolt),
		batches:   make(chan *batchMsg, RemoteQueueDepth),
		done:      make(chan struct{}),
	}
	w.hosted[name] = h
	go w.runBolt(h)
	return h, nil
}

// RemoteQueueDepth is the per-bolt batch channel depth on the worker. The
// serve side's in-flight window (engine.RemoteInflight per executor) is
// the real bound; this only needs to cover several executors sharing one
// bolt runner.
const RemoteQueueDepth = 64

// runBolt processes one bolt's batches in order: build the task instance
// on first use, run Process with a capturing emitter, time each tuple
// (the probe aggregates travel home with the result), and write the
// result frame.
func (w *Worker) runBolt(h *hostedBolt) {
	defer close(h.done)
	var res resultMsg
	var emits []engine.Values
	emit := engine.Emit(func(v engine.Values) { emits = append(emits, v) })
	for m := range h.batches {
		w.batches.Add(1)
		w.tuples.Add(int64(len(m.Items)))
		res.Seq = m.Seq
		res.Emitted = res.Emitted[:0]
		res.Served = int64(len(m.Items))
		res.Sampled = int64(len(m.Items))
		res.BusyNanos, res.BusySqMicros, res.Errors = 0, 0, 0
		res.Traced = res.Traced[:0]
		res.WaitNS = res.WaitNS[:0]
		res.ServiceNS = res.ServiceNS[:0]
		for i, it := range m.Items {
			inst, ok := h.instances[it.Task]
			if !ok {
				inst = h.factory(it.Task)
				h.instances[it.Task] = inst
			}
			emits = emits[:0]
			start := time.Now()
			err := inst.Process(engine.Tuple{Values: it.Values}, emit)
			d := time.Since(start)
			res.BusyNanos += int64(d)
			us := d.Microseconds()
			res.BusySqMicros += us * us
			if err != nil {
				res.Errors++
			}
			if it.Traced {
				// Wait and service on the worker's own clock: durations
				// only, so serve-side stitching is clock-skew-free.
				res.Traced = append(res.Traced, uint32(i))
				res.WaitNS = append(res.WaitNS, int64(start.Sub(m.arrived)))
				res.ServiceNS = append(res.ServiceNS, int64(d))
			}
			res.Emitted = append(res.Emitted, append([]engine.Values(nil), emits...))
		}
		putBatchMsg(m)
		if err := w.writeResult(&res); err != nil {
			_ = w.conn.Close() // the read loop surfaces the error
			for m := range h.batches {
				putBatchMsg(m)
			}
			return
		}
	}
}

// writeResult frames and writes one result under the shared write lock.
func (w *Worker) writeResult(res *resultMsg) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	frame, err := appendResultFrame(w.wbuf[:0], res)
	if err != nil {
		return err
	}
	w.wbuf = frame
	_ = w.conn.SetWriteDeadline(time.Now().Add(DefaultWriteTimeout))
	_, err = w.conn.Write(frame)
	return err
}

// writeHeartbeat frames and writes one heartbeat under the shared write
// lock.
func (w *Worker) writeHeartbeat() error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	var hb [9]byte
	frame, err := finishFrame(append(beginFrame(hb[:0]), kindHeartbeat))
	if err != nil {
		return err
	}
	_ = w.conn.SetWriteDeadline(time.Now().Add(DefaultWriteTimeout))
	_, err = w.conn.Write(frame)
	return err
}

// batchMsg pooling: the reader decodes into pooled messages, the bolt
// runners return them after processing.
var batchPool = sync.Pool{New: func() any { return new(batchMsg) }}

func getBatchMsg() *batchMsg { return batchPool.Get().(*batchMsg) }

func putBatchMsg(m *batchMsg) {
	clear(m.Items)
	m.Items = m.Items[:0]
	batchPool.Put(m)
}
