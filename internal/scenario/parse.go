package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Parse decodes a scenario spec from strict JSON and compiles it — the
// topology.Parse idiom: unknown fields are rejected to catch typos, and
// the compiled Timeline is returned alongside the raw Spec so an invalid
// composition (NaN/Inf rates, overlapping kill windows, churn on a
// decommissioned machine) fails at the door, never mid-replay.
func Parse(raw []byte) (*Timeline, Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, Spec{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	// A second document after the first is a malformed file, not trailing
	// noise to ignore.
	if dec.More() {
		return nil, Spec{}, fmt.Errorf("scenario: trailing data after spec")
	}
	tl, err := Compile(s)
	if err != nil {
		return nil, Spec{}, err
	}
	return tl, s, nil
}

// Load reads and parses a scenario spec from disk.
func Load(path string) (*Timeline, Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, Spec{}, fmt.Errorf("scenario: reading %s: %w", path, err)
	}
	tl, s, err := Parse(raw)
	if err != nil {
		return nil, Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return tl, s, nil
}
