package scenario

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestCanonicalJSONTwin pins scenarios/chaos.json to the built-in
// canonical spec: the file is what `ingestload -trace` and
// `drs-experiments chaos -scenario` load, and it must stay byte-for-byte
// semantically identical to scenario.Chaos() — same spec, same compiled
// timeline — or the live replay and the golden-locked simulation drift
// apart.
func TestCanonicalJSONTwin(t *testing.T) {
	path := filepath.Join("..", "..", "scenarios", "chaos.json")
	tl, spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := Chaos()
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("scenarios/chaos.json drifted from scenario.Chaos():\nfile: %+v\ncode: %+v", spec, want)
	}
	wantTL, err := Compile(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl.Events(), wantTL.Events()) {
		t.Fatal("compiled timelines differ between the JSON twin and the built-in spec")
	}
}
