package scenario

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzParseScenario throws arbitrary bytes at the scenario loader and
// checks the contract every driver relies on: no panic; a non-nil
// timeline exactly when err == nil; and a successfully compiled scenario
// whose event schedule is time-sorted with finite non-negative times,
// whose envelopes are strictly positive, and whose tenants all resolve
// arrival processes and service distributions. Inf/NaN rates, overlapping
// kill windows and unknown fields must all land in the err != nil branch.
// Seed corpus: testdata/fuzz/FuzzParseScenario.
func FuzzParseScenario(f *testing.F) {
	if chaos, err := json.Marshal(Chaos()); err == nil {
		f.Add(chaos)
	}
	f.Add([]byte(`{"name":"min","duration_seconds":60,"tenants":[{"name":"a","base_rate":2}]}`))
	f.Add([]byte(`{"name":"full","seed":7,"duration_seconds":600,
		"tenants":[{"name":"a","weight":2,"base_rate":5,
			"diurnal":{"period_seconds":300,"amplitude":0.5},
			"flash_crowds":[{"from_seconds":100,"until_seconds":200,"factor":4}],
			"service_tail_alpha":2.5},
			{"name":"b","base_rate":1}],
		"surges":[{"tenants":["a","b"],"from_seconds":50,"until_seconds":90,"factor":2,"jitter_seconds":5}],
		"churn":{"kills":[{"machine":1,"at_seconds":150,"down_seconds":30}],
			"mtbf_seconds":400,"mttr_seconds":40,"machines":[0,2]},
		"stragglers":[{"machine":3,"from_seconds":200,"until_seconds":260}],
		"policy":[{"at_seconds":300,"tenant":"b","priority":4}],
		"decommissions":[{"machine":5,"at_seconds":500}]}`))
	f.Add([]byte(`{"name":"inf","duration_seconds":60,"tenants":[{"name":"a","base_rate":1e999}]}`))
	f.Add([]byte(`{"name":"overlap","duration_seconds":60,"tenants":[{"name":"a","base_rate":1}],
		"churn":{"kills":[{"machine":0,"at_seconds":1,"down_seconds":10},
			{"machine":0,"at_seconds":5,"down_seconds":10}]}}`))
	f.Add([]byte(`{"name":"typo","duration_seconds":60,"tenants":[{"name":"a","base_rate":1}],"surprise":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		tl, spec, err := Parse(raw)
		if err != nil {
			if tl != nil {
				t.Fatalf("error %v with non-nil timeline", err)
			}
			return
		}
		if tl == nil {
			t.Fatal("nil timeline without error")
		}
		evs := tl.Events()
		for i, e := range evs {
			if e.At < 0 || math.IsNaN(e.At) || math.IsInf(e.At, 0) {
				t.Fatalf("event %d has bad time: %v", i, e)
			}
			if i > 0 && e.At < evs[i-1].At {
				t.Fatalf("events out of order at %d: %v < %v", i, e, evs[i-1])
			}
		}
		for _, tn := range spec.Tenants {
			env, err := tl.Envelope(tn.Name)
			if err != nil {
				t.Fatalf("compiled scenario lost tenant %q: %v", tn.Name, err)
			}
			for i := 0; i <= 8; i++ {
				x := spec.DurationSeconds * float64(i) / 8
				if v := env(x); !(v > 0) || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("tenant %q envelope(%g) = %g", tn.Name, x, v)
				}
			}
			if _, err := tl.Arrivals(tn.Name); err != nil {
				t.Fatalf("tenant %q arrivals: %v", tn.Name, err)
			}
			d, err := tl.Service(tn.Name, 2)
			if err != nil {
				t.Fatalf("tenant %q service: %v", tn.Name, err)
			}
			if m := d.Mean(); !(m > 0) || math.IsNaN(m) || math.IsInf(m, 0) {
				t.Fatalf("tenant %q service mean %g", tn.Name, m)
			}
		}
	})
}
