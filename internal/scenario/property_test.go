package scenario

import (
	"math"
	"reflect"
	"testing"

	"github.com/drs-repro/drs/internal/stats"
)

// randomSpec builds a structurally valid random spec: random tenants with
// random envelopes, renewal churn, scripted kills, stragglers, policy
// changes and decommissions. Construction keeps windows disjoint per
// machine so the generator exercises Compile, not Validate.
func randomSpec(r *stats.RNG) Spec {
	s := Spec{
		Name:            "prop",
		Seed:            r.Uint64(),
		DurationSeconds: r.Uniform(100, 2000),
	}
	names := []string{"t0", "t1", "t2", "t3"}[:1+r.IntN(4)]
	for _, n := range names {
		t := TenantSpec{Name: n, Weight: r.Uniform(0.5, 4), Priority: r.IntN(3), BaseRate: r.Uniform(0.1, 20)}
		if r.Bernoulli(0.5) {
			t.Diurnal = &DiurnalSpec{
				PeriodSeconds: r.Uniform(10, s.DurationSeconds),
				Amplitude:     r.Uniform(0, 0.95),
				PhaseSeconds:  r.Uniform(0, 100),
			}
		}
		if r.Bernoulli(0.5) {
			from := r.Uniform(0, s.DurationSeconds*0.8)
			t.Surges = []SurgeSpec{{From: from, Until: from + r.Uniform(1, 200), Factor: r.Uniform(0.2, 10)}}
		}
		if r.Bernoulli(0.3) {
			t.ServiceTailAlpha = r.Uniform(1.1, 4)
		}
		s.Tenants = append(s.Tenants, t)
	}
	if r.Bernoulli(0.6) {
		from := r.Uniform(0, s.DurationSeconds*0.8)
		s.Surges = []MultiSurgeSpec{{
			Tenants: []string{names[0]},
			From:    from, Until: from + r.Uniform(1, 100),
			Factor: r.Uniform(1, 6), JitterSeconds: r.Uniform(0, 20),
		}}
	}
	// Machines 0..3 carry renewal churn; 4..7 scripted kills and
	// stragglers; 8 is decommissioned. Disjoint ID ranges keep windows
	// trivially non-overlapping.
	if r.Bernoulli(0.7) {
		s.Churn.MTBF = r.Uniform(50, 500)
		s.Churn.MTTR = r.Uniform(5, 50)
		s.Churn.Machines = []int{0, 1, 2, 3}[:1+r.IntN(4)]
	}
	if r.Bernoulli(0.7) {
		at := r.Uniform(0, s.DurationSeconds)
		s.Churn.Kills = []KillSpec{{Machine: 4, At: at, Down: r.Uniform(1, 60)}}
	}
	if r.Bernoulli(0.5) {
		from := r.Uniform(0, s.DurationSeconds*0.9)
		s.Stragglers = []StragglerSpec{{Machine: 5, From: from, Until: from + r.Uniform(1, 60)}}
	}
	if r.Bernoulli(0.5) {
		s.Policy = []PolicySpec{{At: r.Uniform(0, s.DurationSeconds), Tenant: names[0], Priority: r.IntN(5)}}
	}
	if r.Bernoulli(0.6) {
		s.Decommissions = []DecommissionSpec{{Machine: 8, At: r.Uniform(0, s.DurationSeconds)}}
		// Half the time, point the renewal trace at the decommissioned
		// machine too — the compiler must filter it, the interesting case.
		if r.Bernoulli(0.5) && s.Churn.MTBF > 0 {
			s.Churn.Machines = append(s.Churn.Machines, 8)
		}
	}
	return s
}

// TestScenarioProperties drives a few hundred random specs through
// Compile and asserts the generator's contract: same spec (same seed)
// compiles to an identical timeline, events are time-sorted with finite
// non-negative times, surge factors are positive, every fail pairs with a
// recovery, and no churn or straggler event ever lands on a machine at or
// after its decommission.
func TestScenarioProperties(t *testing.T) {
	r := stats.NewRNG(0xC0FFEE)
	for trial := 0; trial < 300; trial++ {
		s := randomSpec(r)
		tl, err := Compile(s)
		if err != nil {
			t.Fatalf("trial %d: random spec rejected: %v\nspec: %+v", trial, err, s)
		}
		again, err := Compile(s)
		if err != nil {
			t.Fatalf("trial %d: second compile failed: %v", trial, err)
		}
		if !reflect.DeepEqual(tl.Events(), again.Events()) {
			t.Fatalf("trial %d: same spec compiled to different timelines", trial)
		}
		decommissionAt := map[int]float64{}
		for _, d := range s.Decommissions {
			decommissionAt[d.Machine] = d.At
		}
		evs := tl.Events()
		down := map[int]bool{}
		for i, e := range evs {
			if i > 0 && e.At < evs[i-1].At {
				t.Fatalf("trial %d: events out of order at %d: %v < %v", trial, i, e, evs[i-1])
			}
			if e.At < 0 || math.IsNaN(e.At) || math.IsInf(e.At, 0) {
				t.Fatalf("trial %d: bad event time: %v", trial, e)
			}
			switch e.Kind {
			case KindSurgeStart, KindSurgeEnd:
				if !(e.Factor > 0) {
					t.Fatalf("trial %d: non-positive surge factor: %v", trial, e)
				}
			case KindFail, KindRecover, KindStragglerOn, KindStragglerOff:
				if at, gone := decommissionAt[e.Machine]; gone && e.At >= at {
					t.Fatalf("trial %d: churn on decommissioned machine: %v (decommissioned t=%g)", trial, e, at)
				}
				if e.Kind == KindFail {
					if down[e.Machine] {
						t.Fatalf("trial %d: machine %d failed twice without recovery", trial, e.Machine)
					}
					down[e.Machine] = true
				}
				if e.Kind == KindRecover {
					if !down[e.Machine] {
						t.Fatalf("trial %d: machine %d recovered while up", trial, e.Machine)
					}
					down[e.Machine] = false
				}
			}
		}
		for m, d := range down {
			if d {
				t.Fatalf("trial %d: machine %d left permanently dead (fail without recovery)", trial, m)
			}
		}
		// The envelope stays strictly positive for every tenant at a
		// spread of sample points.
		for _, tn := range s.Tenants {
			env, err := tl.Envelope(tn.Name)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i <= 20; i++ {
				x := s.DurationSeconds * float64(i) / 20
				if v := env(x); !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
					t.Fatalf("trial %d: tenant %s envelope(%g) = %g", trial, tn.Name, x, v)
				}
			}
		}
	}
}

// TestArrivalDeterminism checks the full generative path: two arrival
// processes built from the same compiled spec and driven by same-seeded
// RNGs emit identical gap sequences, and all gaps are non-negative.
func TestArrivalDeterminism(t *testing.T) {
	tl, err := Compile(Chaos())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gold", "bronze"} {
		a1, err := tl.Arrivals(name)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := tl.Arrivals(name)
		if err != nil {
			t.Fatal(err)
		}
		r1, r2 := stats.NewRNG(42), stats.NewRNG(42)
		for i := 0; i < 5000; i++ {
			g1, g2 := a1.NextInterArrival(r1), a2.NextInterArrival(r2)
			if g1 != g2 {
				t.Fatalf("%s: gap %d diverged: %g vs %g", name, i, g1, g2)
			}
			if g1 < 0 || math.IsNaN(g1) || math.IsInf(g1, 0) {
				t.Fatalf("%s: bad gap %g", name, g1)
			}
		}
	}
}

// TestJitterStability pins the independence of surge jitter draws: the
// jitter a tenant receives is keyed by (surge index, tenant index), so
// recompiling yields the same windows, and two tenants in one surge get
// different (but deterministic) starts.
func TestJitterStability(t *testing.T) {
	s := minimal()
	s.Tenants = append(s.Tenants, TenantSpec{Name: "b", BaseRate: 1})
	s.Surges = []MultiSurgeSpec{{Tenants: []string{"a", "b"}, From: 10, Until: 20, Factor: 2, JitterSeconds: 5}}
	starts := func() (float64, float64) {
		tl, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		var a, b float64
		for _, e := range tl.Events() {
			if e.Kind == KindSurgeStart {
				if e.Tenant == "a" {
					a = e.At
				} else {
					b = e.At
				}
			}
		}
		return a, b
	}
	a1, b1 := starts()
	a2, b2 := starts()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("jitter not deterministic: (%g,%g) vs (%g,%g)", a1, b1, a2, b2)
	}
	if a1 == b1 {
		t.Fatalf("both tenants drew identical jitter %g", a1)
	}
	for _, v := range []float64{a1, b1} {
		if v < 10 || v >= 15 {
			t.Fatalf("jittered start %g outside [10, 15)", v)
		}
	}
}
