package scenario

// Chaos returns the canonical everything-at-once scenario the `chaos`
// experiment golden-locks and `ingestload -trace` replays live: two
// tenants over a 24-minute arc — "gold" riding a compressed diurnal day
// with a heavy Pareto service tail, "bronze" flat until an 8× flash crowd
// — plus a correlated two-tenant surge, a scripted mid-flash machine
// kill, a straggler window, a priority inversion and its repair, and a
// decommission in the cooldown. Scaled copies (Spec.Scaled) drive the
// short test runs; the JSON twin lives in scenarios/chaos.json.
func Chaos() Spec {
	return Spec{
		Name:            "chaos",
		Seed:            11,
		DurationSeconds: 1440,
		Tenants: []TenantSpec{
			{
				Name:     "gold",
				Weight:   3,
				Priority: 2,
				BaseRate: 3,
				Diurnal: &DiurnalSpec{
					PeriodSeconds: 720,
					Amplitude:     0.4,
				},
				ServiceTailAlpha: 2.5,
			},
			{
				Name:     "bronze",
				Weight:   1,
				Priority: 1,
				BaseRate: 3,
				Surges: []SurgeSpec{
					// The flash crowd: 8x for nine minutes, far past what
					// admission can grant — the shed-but-never-lose phase.
					{From: 540, Until: 1080, Factor: 8},
				},
			},
		},
		Surges: []MultiSurgeSpec{
			// Correlated morning surge: both tenants jump together, starts
			// jittered so the fronts do not land in lock-step.
			{Tenants: []string{"gold", "bronze"}, From: 240, Until: 420, Factor: 2, JitterSeconds: 30},
		},
		Churn: ChurnSpec{
			Kills: []KillSpec{
				// Machine dies mid-flash-crowd: churn x overload layered.
				{Machine: 3, At: 660, Down: 120},
			},
		},
		Stragglers: []StragglerSpec{
			// Straggler storm while the flash crowd is still on.
			{Machine: 2, From: 840, Until: 960},
		},
		Policy: []PolicySpec{
			// Priority inversion: bronze outranks gold mid-flash, forcing
			// preemption toward the surging tenant; repaired in cooldown.
			{At: 780, Tenant: "bronze", Priority: 3},
			{At: 1260, Tenant: "bronze", Priority: 1},
		},
		Decommissions: []DecommissionSpec{
			// Permanent capacity loss during cooldown: the arc must settle
			// on a smaller pool, not just recover the old one.
			{Machine: 4, At: 1200},
		},
	}
}
