package scenario

// Restart returns the canonical process-death scenario the `restart`
// experiment golden-locks: one tenant whose flat base rate triples in a
// two-minute flash crowd, and a scripted kill that lands mid-surge. The
// kill is repurposed from machine churn to process death — machine 0 IS
// the DRS node, so KindFail is the kill -9 moment and KindRecover the
// restart — which is what lets the same spec grammar (and the same
// fire-time event plumbing) script a WAL crash-recovery arc: the node
// dies with a backlog of admitted-but-unprocessed records in its ring
// and ACKed records beyond its last durable watermark, exactly the state
// recovery must not lose.
func Restart() Spec {
	return Spec{
		Name:            "restart",
		Seed:            7,
		DurationSeconds: 300,
		Tenants: []TenantSpec{{
			Name:     "ingest",
			BaseRate: 4,
			Surges: []SurgeSpec{
				// The flash crowd: 3x for two minutes — offered rate rises
				// past the drain capacity, so a ring backlog builds.
				{From: 60, Until: 180, Factor: 3},
			},
		}},
		Churn: ChurnSpec{Kills: []KillSpec{
			// kill -9 at the surge's midpoint; the process is down for
			// 20 s (clients see a dead front door), then restarts into
			// recovery + replay while the surge still runs.
			{Machine: 0, At: 120, Down: 20},
		}},
	}
}
