// Package scenario is the trace-driven workload/chaos factory: one
// declarative, seeded Spec composes every stressor the stack knows —
// arrival shapes (diurnal sinusoids, flash crowds, correlated multi-tenant
// surges), heavy-tailed (Pareto) service times, machine churn (explicit
// kill scripts and MTBF/MTTR failure traces), straggler storms and
// scheduled priority changes — into a single deterministic Timeline that
// both substrates replay: the discrete-event simulator drives it in
// virtual time (the `drs-experiments chaos` arc) and `ingestload -trace`
// replays the same arrival envelopes against a live `drsctl serve` front
// door, so every simulated scenario has a live-socket twin.
//
// Everything is a pure function of (Spec, Seed): compiling the same spec
// twice yields byte-identical event timelines, which is what lets the
// chaos experiment be golden-locked and the property tests assert
// determinism. Specs load from strict JSON (Parse/Load, the
// topology.Parse idiom: unknown fields, NaN/Inf rates and overlapping
// kill windows are rejected at the door, never at replay time).
package scenario

import (
	"fmt"
	"math"
	"sort"

	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
)

// Spec is the declarative description of one scenario. All times are in
// scenario seconds from t = 0; DurationSeconds is the horizon everything
// must fit under.
type Spec struct {
	// Name identifies the scenario in reports and golden files.
	Name string `json:"name"`
	// Seed makes every derived trace reproducible (0 is a valid seed).
	Seed uint64 `json:"seed"`
	// DurationSeconds is the scenario horizon.
	DurationSeconds float64 `json:"duration_seconds"`
	// Tenants lists the traffic sources.
	Tenants []TenantSpec `json:"tenants"`
	// Surges are correlated multi-tenant load surges — one flash crowd
	// hitting several tenants at once (with optional seeded per-tenant
	// start jitter), the "everyone piles on together" shape no
	// single-tenant window can express.
	Surges []MultiSurgeSpec `json:"surges,omitempty"`
	// Churn schedules machine failures.
	Churn ChurnSpec `json:"churn,omitempty"`
	// Stragglers schedules degraded-machine windows (cluster
	// MarkStraggler storms).
	Stragglers []StragglerSpec `json:"stragglers,omitempty"`
	// Policy schedules tenant priority changes.
	Policy []PolicySpec `json:"policy,omitempty"`
	// Decommissions retires machines permanently at a point in time; no
	// churn or straggler event may target a machine at or after its
	// decommission (the compiler filters trace-driven churn, and explicit
	// kills that would violate it are rejected).
	Decommissions []DecommissionSpec `json:"decommissions,omitempty"`
}

// TenantSpec describes one tenant's offered workload.
type TenantSpec struct {
	// Name identifies the tenant; unique within the spec.
	Name string `json:"name"`
	// Weight is the admission-shedding weight (higher sheds last;
	// 0 defaults to 1).
	Weight float64 `json:"weight,omitempty"`
	// Priority is the tenant's initial preemption rank.
	Priority int `json:"priority,omitempty"`
	// BaseRate is the tenant's long-run offered rate λ0 in tuples/s.
	BaseRate float64 `json:"base_rate"`
	// Diurnal modulates the rate with a sinusoid (nil = flat).
	Diurnal *DiurnalSpec `json:"diurnal,omitempty"`
	// Surges are this tenant's own flash-crowd windows.
	Surges []SurgeSpec `json:"flash_crowds,omitempty"`
	// ServiceTailAlpha, when > 1, swaps the tenant chain's exponential
	// service times for a Pareto with the same mean and this tail
	// exponent — heavy-tailed per-tuple cost (straggler tuples). 0 keeps
	// exponential service.
	ServiceTailAlpha float64 `json:"service_tail_alpha,omitempty"`
}

// DiurnalSpec is a sinusoidal rate envelope: rate(t) = base ·
// (1 + Amplitude·sin(2π(t+Phase)/Period)) — the compressed "day" of a
// diurnal traffic curve.
type DiurnalSpec struct {
	// PeriodSeconds is the length of one full cycle.
	PeriodSeconds float64 `json:"period_seconds"`
	// Amplitude in [0, 1) scales the swing; 1 would touch zero rate.
	Amplitude float64 `json:"amplitude"`
	// PhaseSeconds shifts the cycle (0 starts at the mean, rising).
	PhaseSeconds float64 `json:"phase_seconds,omitempty"`
}

// SurgeSpec is one flash-crowd window: the tenant's rate is multiplied by
// Factor inside [From, Until).
type SurgeSpec struct {
	// From and Until bound the window in scenario seconds.
	From  float64 `json:"from_seconds"`
	Until float64 `json:"until_seconds"`
	// Factor scales the rate inside the window (> 0; > 1 is a surge,
	// < 1 a lull).
	Factor float64 `json:"factor"`
}

// MultiSurgeSpec is a correlated surge across several tenants.
type MultiSurgeSpec struct {
	// Tenants names the affected tenants (all must exist).
	Tenants []string `json:"tenants"`
	// From, Until and Factor are as in SurgeSpec.
	From   float64 `json:"from_seconds"`
	Until  float64 `json:"until_seconds"`
	Factor float64 `json:"factor"`
	// JitterSeconds staggers each tenant's window start by a seeded
	// uniform draw in [0, Jitter) — flash crowds land together but not in
	// lock-step.
	JitterSeconds float64 `json:"jitter_seconds,omitempty"`
}

// ChurnSpec schedules machine failures: explicit scripted kills, an
// MTBF/MTTR renewal trace, or both composed.
type ChurnSpec struct {
	// Kills are scripted outages (exact timing, the experiment form).
	Kills []KillSpec `json:"kills,omitempty"`
	// MTBF and MTTR, when both positive, add a sim.FailureTrace renewal
	// process over Machines, seeded from the spec seed.
	MTBF float64 `json:"mtbf_seconds,omitempty"`
	MTTR float64 `json:"mttr_seconds,omitempty"`
	// Machines lists the machine IDs the renewal trace churns.
	Machines []int `json:"machines,omitempty"`
}

// KillSpec is one scripted outage.
type KillSpec struct {
	// Machine is the target machine ID (experiments may resolve it
	// against the live pool at fire time).
	Machine int `json:"machine"`
	// At is the failure time; Down the outage length (seconds).
	At   float64 `json:"at_seconds"`
	Down float64 `json:"down_seconds"`
}

// StragglerSpec marks a machine degraded-but-alive inside a window.
type StragglerSpec struct {
	// Machine is the target machine ID.
	Machine int `json:"machine"`
	// From and Until bound the degraded window.
	From  float64 `json:"from_seconds"`
	Until float64 `json:"until_seconds"`
}

// PolicySpec is one scheduled priority change.
type PolicySpec struct {
	// At is when the change applies.
	At float64 `json:"at_seconds"`
	// Tenant names the affected tenant.
	Tenant string `json:"tenant"`
	// Priority is the new preemption rank.
	Priority int `json:"priority"`
}

// DecommissionSpec retires a machine permanently.
type DecommissionSpec struct {
	// Machine is the retired machine ID.
	Machine int `json:"machine"`
	// At is the retirement time.
	At float64 `json:"at_seconds"`
}

// finite reports whether v is a usable number (no NaN, no ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks the spec's internal consistency — the same contract
// Parse enforces on files. It returns the first violation found.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if !(s.DurationSeconds > 0) || !finite(s.DurationSeconds) {
		return fmt.Errorf("scenario: duration %g must be finite and positive", s.DurationSeconds)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("scenario: at least one tenant is required")
	}
	tenants := make(map[string]bool, len(s.Tenants))
	for i, t := range s.Tenants {
		if t.Name == "" {
			return fmt.Errorf("scenario: tenant %d has no name", i)
		}
		if tenants[t.Name] {
			return fmt.Errorf("scenario: duplicate tenant %q", t.Name)
		}
		tenants[t.Name] = true
		if !(t.BaseRate > 0) || !finite(t.BaseRate) {
			return fmt.Errorf("scenario: tenant %q base rate %g must be finite and positive", t.Name, t.BaseRate)
		}
		if t.Weight < 0 || !finite(t.Weight) {
			return fmt.Errorf("scenario: tenant %q weight %g must be finite and >= 0", t.Name, t.Weight)
		}
		if d := t.Diurnal; d != nil {
			if !(d.PeriodSeconds > 0) || !finite(d.PeriodSeconds) {
				return fmt.Errorf("scenario: tenant %q diurnal period %g must be finite and positive", t.Name, d.PeriodSeconds)
			}
			if d.Amplitude < 0 || d.Amplitude >= 1 || !finite(d.Amplitude) {
				return fmt.Errorf("scenario: tenant %q diurnal amplitude %g must be in [0, 1)", t.Name, d.Amplitude)
			}
			if !finite(d.PhaseSeconds) {
				return fmt.Errorf("scenario: tenant %q diurnal phase must be finite", t.Name)
			}
		}
		for _, w := range t.Surges {
			if err := validateWindow(w.From, w.Until, w.Factor); err != nil {
				return fmt.Errorf("scenario: tenant %q flash crowd: %w", t.Name, err)
			}
		}
		if a := t.ServiceTailAlpha; a != 0 && (!(a > 1) || !finite(a)) {
			return fmt.Errorf("scenario: tenant %q service tail alpha %g must be finite and > 1 (finite-mean Pareto)", t.Name, a)
		}
	}
	for i, ms := range s.Surges {
		if len(ms.Tenants) == 0 {
			return fmt.Errorf("scenario: surge %d names no tenants", i)
		}
		for _, name := range ms.Tenants {
			if !tenants[name] {
				return fmt.Errorf("scenario: surge %d targets unknown tenant %q", i, name)
			}
		}
		if err := validateWindow(ms.From, ms.Until, ms.Factor); err != nil {
			return fmt.Errorf("scenario: surge %d: %w", i, err)
		}
		if ms.JitterSeconds < 0 || !finite(ms.JitterSeconds) {
			return fmt.Errorf("scenario: surge %d jitter %g must be finite and >= 0", i, ms.JitterSeconds)
		}
	}
	if err := s.Churn.validate(); err != nil {
		return err
	}
	// Bound the renewal trace's expected event count: a pathological
	// horizon/MTBF ratio would otherwise make Compile materialize
	// millions of churn events (a fuzz-input hazard, never a real spec).
	if s.Churn.MTBF > 0 {
		if expected := s.DurationSeconds / s.Churn.MTBF * float64(len(s.Churn.Machines)); expected > 1e5 {
			return fmt.Errorf("scenario: renewal churn too dense (~%.0f expected outages; cap 100000)", expected)
		}
	}
	decommissionAt := make(map[int]float64, len(s.Decommissions))
	for i, d := range s.Decommissions {
		if d.Machine < 0 {
			return fmt.Errorf("scenario: decommission %d targets negative machine %d", i, d.Machine)
		}
		if d.At < 0 || !finite(d.At) {
			return fmt.Errorf("scenario: decommission %d at %g must be finite and >= 0", i, d.At)
		}
		if prev, dup := decommissionAt[d.Machine]; dup {
			return fmt.Errorf("scenario: machine %d decommissioned twice (t=%g and t=%g)", d.Machine, prev, d.At)
		}
		decommissionAt[d.Machine] = d.At
	}
	for i, k := range s.Churn.Kills {
		if at, gone := decommissionAt[k.Machine]; gone && k.At+k.Down > at {
			return fmt.Errorf("scenario: kill %d churns machine %d past its decommission at t=%g", i, k.Machine, at)
		}
	}
	perMachine := make(map[int][]StragglerSpec)
	for i, st := range s.Stragglers {
		if st.Machine < 0 {
			return fmt.Errorf("scenario: straggler %d targets negative machine %d", i, st.Machine)
		}
		if err := validateWindow(st.From, st.Until, 1); err != nil {
			return fmt.Errorf("scenario: straggler %d: %w", i, err)
		}
		for _, prev := range perMachine[st.Machine] {
			if st.From < prev.Until && prev.From < st.Until {
				return fmt.Errorf("scenario: straggler windows overlap on machine %d ([%g,%g) and [%g,%g))",
					st.Machine, prev.From, prev.Until, st.From, st.Until)
			}
		}
		perMachine[st.Machine] = append(perMachine[st.Machine], st)
		if at, gone := decommissionAt[st.Machine]; gone && st.Until > at {
			return fmt.Errorf("scenario: straggler %d runs past machine %d's decommission at t=%g", i, st.Machine, at)
		}
	}
	for i, p := range s.Policy {
		if p.At < 0 || !finite(p.At) {
			return fmt.Errorf("scenario: policy %d at %g must be finite and >= 0", i, p.At)
		}
		if !tenants[p.Tenant] {
			return fmt.Errorf("scenario: policy %d targets unknown tenant %q", i, p.Tenant)
		}
		if p.Priority < 0 {
			return fmt.Errorf("scenario: policy %d sets negative priority %d", i, p.Priority)
		}
	}
	return nil
}

// validateWindow checks one [from, until) window and its factor.
func validateWindow(from, until, factor float64) error {
	if from < 0 || !finite(from) || !finite(until) {
		return fmt.Errorf("window [%g, %g) must be finite with from >= 0", from, until)
	}
	if !(from < until) {
		return fmt.Errorf("window [%g, %g) is empty or inverted", from, until)
	}
	if !(factor > 0) || !finite(factor) {
		return fmt.Errorf("factor %g must be finite and positive", factor)
	}
	return nil
}

// validate checks the churn schedule: each mode's parameters, and that no
// two kill windows overlap on the same machine (an overlapping kill would
// fail a machine that is already down).
func (c ChurnSpec) validate() error {
	for i, k := range c.Kills {
		if k.Machine < 0 {
			return fmt.Errorf("scenario: kill %d targets negative machine %d", i, k.Machine)
		}
		if k.At < 0 || !finite(k.At) {
			return fmt.Errorf("scenario: kill %d at %g must be finite and >= 0", i, k.At)
		}
		if !(k.Down > 0) || !finite(k.Down) {
			return fmt.Errorf("scenario: kill %d outage %g must be finite and positive", i, k.Down)
		}
		for j := 0; j < i; j++ {
			p := c.Kills[j]
			if p.Machine == k.Machine && k.At < p.At+p.Down && p.At < k.At+k.Down {
				return fmt.Errorf("scenario: kill windows overlap on machine %d ([%g,%g) and [%g,%g))",
					k.Machine, p.At, p.At+p.Down, k.At, k.At+k.Down)
			}
		}
	}
	hasRenewal := c.MTBF != 0 || c.MTTR != 0
	if hasRenewal {
		if !(c.MTBF > 0) || !finite(c.MTBF) || !(c.MTTR > 0) || !finite(c.MTTR) {
			return fmt.Errorf("scenario: renewal churn needs positive finite MTBF/MTTR, got %g/%g", c.MTBF, c.MTTR)
		}
		if len(c.Machines) == 0 {
			return fmt.Errorf("scenario: renewal churn lists no machines")
		}
	}
	seen := make(map[int]bool, len(c.Machines))
	for _, m := range c.Machines {
		if m < 0 {
			return fmt.Errorf("scenario: renewal churn targets negative machine %d", m)
		}
		if seen[m] {
			return fmt.Errorf("scenario: renewal churn lists machine %d twice", m)
		}
		seen[m] = true
	}
	return nil
}

// Scaled returns a copy of the spec with every time quantity multiplied
// by f — the scaled-down form benchmarks and quick tests run. Rates and
// factors are untouched (a shorter day, not a gentler one); the renewal
// churn's MTBF/MTTR scale with the horizon so the expected outage count
// is preserved.
func (s Spec) Scaled(f float64) Spec {
	out := s
	out.DurationSeconds *= f
	out.Tenants = append([]TenantSpec(nil), s.Tenants...)
	for i, t := range out.Tenants {
		if t.Diurnal != nil {
			d := *t.Diurnal
			d.PeriodSeconds *= f
			d.PhaseSeconds *= f
			out.Tenants[i].Diurnal = &d
		}
		out.Tenants[i].Surges = scaleWindows(t.Surges, f)
	}
	out.Surges = append([]MultiSurgeSpec(nil), s.Surges...)
	for i := range out.Surges {
		out.Surges[i].From *= f
		out.Surges[i].Until *= f
		out.Surges[i].JitterSeconds *= f
	}
	out.Churn.Kills = append([]KillSpec(nil), s.Churn.Kills...)
	for i := range out.Churn.Kills {
		out.Churn.Kills[i].At *= f
		out.Churn.Kills[i].Down *= f
	}
	out.Churn.MTBF *= f
	out.Churn.MTTR *= f
	out.Churn.Machines = append([]int(nil), s.Churn.Machines...)
	out.Stragglers = append([]StragglerSpec(nil), s.Stragglers...)
	for i := range out.Stragglers {
		out.Stragglers[i].From *= f
		out.Stragglers[i].Until *= f
	}
	out.Policy = append([]PolicySpec(nil), s.Policy...)
	for i := range out.Policy {
		out.Policy[i].At *= f
	}
	out.Decommissions = append([]DecommissionSpec(nil), s.Decommissions...)
	for i := range out.Decommissions {
		out.Decommissions[i].At *= f
	}
	return out
}

// scaleWindows scales one tenant's flash-crowd windows.
func scaleWindows(ws []SurgeSpec, f float64) []SurgeSpec {
	out := append([]SurgeSpec(nil), ws...)
	for i := range out {
		out[i].From *= f
		out[i].Until *= f
	}
	return out
}

// Kind discriminates timeline events.
type Kind int

// The event kinds a compiled timeline can carry, in tie-break order:
// failures land before recoveries at the same instant (a zero-length
// outage stays observable), infrastructure events before policy and
// surge markers.
const (
	// KindFail takes a machine down.
	KindFail Kind = iota
	// KindRecover brings a failed machine back.
	KindRecover
	// KindStragglerOn marks a machine degraded-but-alive.
	KindStragglerOn
	// KindStragglerOff clears the degraded mark.
	KindStragglerOff
	// KindDecommission retires a machine permanently.
	KindDecommission
	// KindPriority applies a tenant priority change.
	KindPriority
	// KindSurgeStart and KindSurgeEnd bracket a resolved surge window —
	// informational markers phase-segmenting drivers key on; the arrival
	// envelope itself already carries the rate change.
	KindSurgeStart
	// KindSurgeEnd closes a surge window.
	KindSurgeEnd
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFail:
		return "fail"
	case KindRecover:
		return "recover"
	case KindStragglerOn:
		return "straggler-on"
	case KindStragglerOff:
		return "straggler-off"
	case KindDecommission:
		return "decommission"
	case KindPriority:
		return "priority"
	case KindSurgeStart:
		return "surge-start"
	case KindSurgeEnd:
		return "surge-end"
	default:
		return "unknown"
	}
}

// Event is one timeline entry.
type Event struct {
	// At is the event time in scenario seconds.
	At float64
	// Kind discriminates the payload fields below.
	Kind Kind
	// Machine is the target of Fail/Recover/Straggler*/Decommission.
	Machine int
	// Tenant is the target of Priority and Surge* events.
	Tenant string
	// Priority is the new rank of a Priority event.
	Priority int
	// Factor is the rate multiplier of a Surge* event.
	Factor float64
}

// String renders the event for reports.
func (e Event) String() string {
	switch e.Kind {
	case KindFail, KindRecover, KindStragglerOn, KindStragglerOff, KindDecommission:
		return fmt.Sprintf("t=%.0fs %s machine %d", e.At, e.Kind, e.Machine)
	case KindPriority:
		return fmt.Sprintf("t=%.0fs %s %s -> %d", e.At, e.Kind, e.Tenant, e.Priority)
	case KindSurgeStart, KindSurgeEnd:
		return fmt.Sprintf("t=%.0fs %s %s x%.1f", e.At, e.Kind, e.Tenant, e.Factor)
	default:
		return fmt.Sprintf("t=%.0fs %s", e.At, e.Kind)
	}
}

// window is one resolved multiplicative rate window.
type window struct {
	from, until, factor float64
}

// Timeline is a compiled scenario: the merged, time-sorted event schedule
// plus each tenant's resolved arrival envelope. Compile is deterministic —
// the same spec yields an identical timeline every time.
type Timeline struct {
	spec    Spec
	events  []Event
	windows map[string][]window
}

// Compile validates the spec and resolves it into a timeline: renewal
// churn is sampled (seeded), correlated surges are jittered per tenant
// (seeded, via independent RNG splits so adding a tenant never shifts
// another's draw), churn on decommissioned machines is filtered, and the
// merged schedule is sorted by (time, kind, machine, tenant).
func Compile(s Spec) (*Timeline, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tl := &Timeline{spec: s, windows: make(map[string][]window, len(s.Tenants))}
	decommissionAt := make(map[int]float64, len(s.Decommissions))
	for _, d := range s.Decommissions {
		decommissionAt[d.Machine] = d.At
		tl.events = append(tl.events, Event{At: d.At, Kind: KindDecommission, Machine: d.Machine})
	}
	// gone reports whether machine m is decommissioned at time t.
	gone := func(m int, t float64) bool {
		at, ok := decommissionAt[m]
		return ok && t >= at
	}
	for _, k := range s.Churn.Kills {
		tl.events = append(tl.events,
			Event{At: k.At, Kind: KindFail, Machine: k.Machine},
			Event{At: k.At + k.Down, Kind: KindRecover, Machine: k.Machine})
	}
	if s.Churn.MTBF > 0 {
		trace := sim.FailureTrace{MTBF: s.Churn.MTBF, MTTR: s.Churn.MTTR,
			Machines: s.Churn.Machines, Seed: s.Seed}
		evs, err := trace.Events(s.DurationSeconds)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		// A renewal outage straddling a decommission is dropped whole:
		// half an outage (a fail without its recovery, or vice versa)
		// would leak a permanently dead machine into the driver.
		down := make(map[int]bool, len(s.Churn.Machines))
		for _, ev := range evs {
			if ev.Fail {
				if gone(ev.Machine, ev.At) || gone(ev.Machine, s.DurationSeconds) {
					down[ev.Machine] = false
					continue
				}
				down[ev.Machine] = true
				tl.events = append(tl.events, Event{At: ev.At, Kind: KindFail, Machine: ev.Machine})
			} else if down[ev.Machine] {
				down[ev.Machine] = false
				tl.events = append(tl.events, Event{At: ev.At, Kind: KindRecover, Machine: ev.Machine})
			}
		}
	}
	for _, st := range s.Stragglers {
		tl.events = append(tl.events,
			Event{At: st.From, Kind: KindStragglerOn, Machine: st.Machine},
			Event{At: st.Until, Kind: KindStragglerOff, Machine: st.Machine})
	}
	for _, p := range s.Policy {
		tl.events = append(tl.events, Event{At: p.At, Kind: KindPriority, Tenant: p.Tenant, Priority: p.Priority})
	}
	for _, t := range s.Tenants {
		for _, w := range t.Surges {
			tl.addWindow(t.Name, window{from: w.From, until: w.Until, factor: w.Factor})
		}
	}
	rng := stats.NewRNG(s.Seed)
	for i, ms := range s.Surges {
		// One independent stream per (surge, tenant) pair, keyed by stable
		// indices: editing one tenant's list never re-rolls another's jitter.
		for _, name := range ms.Tenants {
			jitter := 0.0
			if ms.JitterSeconds > 0 {
				jitter = rng.Split(uint64(i)<<32|uint64(tenantIndex(s.Tenants, name))).
					Uniform(0, ms.JitterSeconds)
			}
			tl.addWindow(name, window{from: ms.From + jitter, until: ms.Until + jitter, factor: ms.Factor})
		}
	}
	sort.SliceStable(tl.events, func(a, b int) bool {
		x, y := tl.events[a], tl.events[b]
		if x.At != y.At {
			return x.At < y.At
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		if x.Machine != y.Machine {
			return x.Machine < y.Machine
		}
		return x.Tenant < y.Tenant
	})
	return tl, nil
}

// addWindow records a resolved window and its bracketing surge markers.
func (tl *Timeline) addWindow(tenant string, w window) {
	tl.windows[tenant] = append(tl.windows[tenant], w)
	tl.events = append(tl.events,
		Event{At: w.from, Kind: KindSurgeStart, Tenant: tenant, Factor: w.factor},
		Event{At: w.until, Kind: KindSurgeEnd, Tenant: tenant, Factor: w.factor})
}

// tenantIndex finds a tenant's position in the spec (validated to exist).
func tenantIndex(ts []TenantSpec, name string) int {
	for i, t := range ts {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Spec returns the compiled spec.
func (tl *Timeline) Spec() Spec { return tl.spec }

// Horizon returns the scenario duration in seconds.
func (tl *Timeline) Horizon() float64 { return tl.spec.DurationSeconds }

// Events returns the merged schedule, sorted by time (a copy; callers may
// consume it destructively).
func (tl *Timeline) Events() []Event { return append([]Event(nil), tl.events...) }

// Envelope returns tenant's multiplicative rate envelope: the diurnal
// sinusoid times every active surge window's factor at time t. The
// envelope is strictly positive (amplitude < 1 and factors > 0 by
// validation) and is the exact function both substrates replay —
// simulated arrivals and ingestload's live pacing.
func (tl *Timeline) Envelope(tenant string) (func(t float64) float64, error) {
	i := tenantIndex(tl.spec.Tenants, tenant)
	if i < 0 {
		return nil, fmt.Errorf("scenario: unknown tenant %q", tenant)
	}
	diurnal := tl.spec.Tenants[i].Diurnal
	windows := tl.windows[tenant]
	return func(t float64) float64 {
		f := 1.0
		if diurnal != nil {
			f *= 1 + diurnal.Amplitude*math.Sin(2*math.Pi*(t+diurnal.PhaseSeconds)/diurnal.PeriodSeconds)
		}
		for _, w := range windows {
			if t >= w.from && t < w.until {
				f *= w.factor
			}
		}
		return f
	}, nil
}

// Arrivals builds tenant's composed arrival process: Poisson at BaseRate
// shaped by the envelope. Each call returns a fresh process (arrival
// processes carry a clock).
func (tl *Timeline) Arrivals(tenant string) (sim.ArrivalProcess, error) {
	i := tenantIndex(tl.spec.Tenants, tenant)
	if i < 0 {
		return nil, fmt.Errorf("scenario: unknown tenant %q", tenant)
	}
	env, err := tl.Envelope(tenant)
	if err != nil {
		return nil, err
	}
	return &ShapedRate{
		Base:     sim.PoissonArrivals{Rate: tl.spec.Tenants[i].BaseRate},
		Envelope: env,
	}, nil
}

// Service builds tenant's per-tuple service-time distribution for a stage
// whose mean service time is 1/mu: exponential by default, a mean-pinned
// Pareto when the tenant declares a heavy service tail.
func (tl *Timeline) Service(tenant string, mu float64) (stats.Dist, error) {
	i := tenantIndex(tl.spec.Tenants, tenant)
	if i < 0 {
		return nil, fmt.Errorf("scenario: unknown tenant %q", tenant)
	}
	if a := tl.spec.Tenants[i].ServiceTailAlpha; a > 1 {
		return stats.NewParetoWithMean(1/mu, a)
	}
	return stats.Exponential{Rate: mu}, nil
}

// ShapedRate modulates a base arrival process by a deterministic
// time-varying envelope: the gap drawn from the base process is divided
// by the envelope's factor at the gap's start — the SteppedRate idiom
// generalized from one window to an arbitrary positive envelope. The
// process tracks time by accumulating its own gaps, so it needs no clock
// plumbing.
type ShapedRate struct {
	// Base is the underlying arrival process (required).
	Base sim.ArrivalProcess
	// Envelope maps scenario time to a strictly positive rate factor.
	Envelope func(t float64) float64

	clock float64
}

// NextInterArrival draws from the base process, compressing or stretching
// the gap by the envelope factor in force when it starts.
func (s *ShapedRate) NextInterArrival(r *stats.RNG) float64 {
	gap := s.Base.NextInterArrival(r)
	if f := s.Envelope(s.clock); f > 0 {
		gap /= f
	}
	s.clock += gap
	return gap
}

// MeanRate reports the base rate: surges and diurnal swings are
// transients around it, and sizing logic should see the long-run mean.
func (s *ShapedRate) MeanRate() float64 { return s.Base.MeanRate() }
