package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/drs-repro/drs/internal/stats"
)

// minimal returns the smallest valid spec, for mutation in rejection tests.
func minimal() Spec {
	return Spec{
		Name:            "t",
		DurationSeconds: 100,
		Tenants:         []TenantSpec{{Name: "a", BaseRate: 2}},
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "name is required"},
		{"zero duration", func(s *Spec) { s.DurationSeconds = 0 }, "duration"},
		{"inf duration", func(s *Spec) { s.DurationSeconds = math.Inf(1) }, "duration"},
		{"no tenants", func(s *Spec) { s.Tenants = nil }, "at least one tenant"},
		{"dup tenant", func(s *Spec) {
			s.Tenants = append(s.Tenants, TenantSpec{Name: "a", BaseRate: 1})
		}, "duplicate tenant"},
		{"nan rate", func(s *Spec) { s.Tenants[0].BaseRate = math.NaN() }, "base rate"},
		{"negative rate", func(s *Spec) { s.Tenants[0].BaseRate = -1 }, "base rate"},
		{"negative weight", func(s *Spec) { s.Tenants[0].Weight = -1 }, "weight"},
		{"amplitude one", func(s *Spec) {
			s.Tenants[0].Diurnal = &DiurnalSpec{PeriodSeconds: 60, Amplitude: 1}
		}, "amplitude"},
		{"zero period", func(s *Spec) {
			s.Tenants[0].Diurnal = &DiurnalSpec{PeriodSeconds: 0, Amplitude: 0.5}
		}, "period"},
		{"inverted surge", func(s *Spec) {
			s.Tenants[0].Surges = []SurgeSpec{{From: 10, Until: 10, Factor: 2}}
		}, "empty or inverted"},
		{"zero factor", func(s *Spec) {
			s.Tenants[0].Surges = []SurgeSpec{{From: 0, Until: 10, Factor: 0}}
		}, "factor"},
		{"inf factor", func(s *Spec) {
			s.Tenants[0].Surges = []SurgeSpec{{From: 0, Until: 10, Factor: math.Inf(1)}}
		}, "factor"},
		{"light tail", func(s *Spec) { s.Tenants[0].ServiceTailAlpha = 1 }, "tail alpha"},
		{"surge unknown tenant", func(s *Spec) {
			s.Surges = []MultiSurgeSpec{{Tenants: []string{"zz"}, From: 0, Until: 10, Factor: 2}}
		}, "unknown tenant"},
		{"surge no tenants", func(s *Spec) {
			s.Surges = []MultiSurgeSpec{{From: 0, Until: 10, Factor: 2}}
		}, "names no tenants"},
		{"negative jitter", func(s *Spec) {
			s.Surges = []MultiSurgeSpec{{Tenants: []string{"a"}, From: 0, Until: 10, Factor: 2, JitterSeconds: -1}}
		}, "jitter"},
		{"overlapping kills", func(s *Spec) {
			s.Churn.Kills = []KillSpec{
				{Machine: 1, At: 10, Down: 20},
				{Machine: 1, At: 25, Down: 10},
			}
		}, "kill windows overlap"},
		{"zero outage", func(s *Spec) {
			s.Churn.Kills = []KillSpec{{Machine: 1, At: 10, Down: 0}}
		}, "outage"},
		{"renewal without machines", func(s *Spec) {
			s.Churn.MTBF, s.Churn.MTTR = 100, 10
		}, "lists no machines"},
		{"renewal half-specified", func(s *Spec) {
			s.Churn.MTBF, s.Churn.Machines = 100, []int{0}
		}, "MTBF/MTTR"},
		{"renewal dup machine", func(s *Spec) {
			s.Churn.MTBF, s.Churn.MTTR, s.Churn.Machines = 100, 10, []int{0, 0}
		}, "twice"},
		{"overlapping stragglers", func(s *Spec) {
			s.Stragglers = []StragglerSpec{
				{Machine: 0, From: 10, Until: 30},
				{Machine: 0, From: 20, Until: 40},
			}
		}, "straggler windows overlap"},
		{"policy unknown tenant", func(s *Spec) {
			s.Policy = []PolicySpec{{At: 10, Tenant: "zz", Priority: 1}}
		}, "unknown tenant"},
		{"policy negative priority", func(s *Spec) {
			s.Policy = []PolicySpec{{At: 10, Tenant: "a", Priority: -1}}
		}, "negative priority"},
		{"double decommission", func(s *Spec) {
			s.Decommissions = []DecommissionSpec{{Machine: 1, At: 10}, {Machine: 1, At: 20}}
		}, "decommissioned twice"},
		{"kill past decommission", func(s *Spec) {
			s.Decommissions = []DecommissionSpec{{Machine: 1, At: 50}}
			s.Churn.Kills = []KillSpec{{Machine: 1, At: 40, Down: 20}}
		}, "past its decommission"},
		{"straggler past decommission", func(s *Spec) {
			s.Decommissions = []DecommissionSpec{{Machine: 1, At: 50}}
			s.Stragglers = []StragglerSpec{{Machine: 1, From: 40, Until: 60}}
		}, "decommission"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := minimal()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a spec with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := minimal().Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
}

func TestCompileEventOrderAndContent(t *testing.T) {
	s := minimal()
	s.Churn.Kills = []KillSpec{{Machine: 2, At: 30, Down: 10}, {Machine: 1, At: 30, Down: 5}}
	s.Stragglers = []StragglerSpec{{Machine: 0, From: 20, Until: 60}}
	s.Policy = []PolicySpec{{At: 30, Tenant: "a", Priority: 4}}
	s.Decommissions = []DecommissionSpec{{Machine: 5, At: 90}}
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	evs := tl.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %v after %v", evs[i], evs[i-1])
		}
	}
	// Same instant: both fails (machine 1 then 2) sort before the
	// priority change, and machine order breaks the kind tie.
	at30 := []Event{}
	for _, e := range evs {
		if e.At == 30 {
			at30 = append(at30, e)
		}
	}
	if len(at30) != 3 || at30[0].Machine != 1 || at30[1].Machine != 2 || at30[2].Kind != KindPriority {
		t.Fatalf("tie-break order wrong at t=30: %v", at30)
	}
	// Each kill produced its recovery; the straggler window closes.
	kinds := map[Kind]int{}
	for _, e := range evs {
		kinds[e.Kind]++
	}
	if kinds[KindFail] != 2 || kinds[KindRecover] != 2 ||
		kinds[KindStragglerOn] != 1 || kinds[KindStragglerOff] != 1 ||
		kinds[KindDecommission] != 1 || kinds[KindPriority] != 1 {
		t.Fatalf("event census wrong: %v", kinds)
	}
}

func TestRenewalChurnSkipsDecommissionedMachines(t *testing.T) {
	s := minimal()
	s.DurationSeconds = 10000
	s.Churn = ChurnSpec{MTBF: 500, MTTR: 50, Machines: []int{0, 1}}
	s.Decommissions = []DecommissionSpec{{Machine: 1, At: 2000}}
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tl.Events() {
		if e.Machine != 1 || e.Kind == KindDecommission {
			continue
		}
		if e.Kind == KindFail || e.Kind == KindRecover {
			if e.At >= 2000 {
				t.Fatalf("churn on decommissioned machine: %v", e)
			}
		}
	}
}

func TestEnvelopeComposition(t *testing.T) {
	s := minimal()
	s.Tenants[0].Diurnal = &DiurnalSpec{PeriodSeconds: 40, Amplitude: 0.5}
	s.Tenants[0].Surges = []SurgeSpec{{From: 10, Until: 20, Factor: 4}}
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	env, err := tl.Envelope("a")
	if err != nil {
		t.Fatal(err)
	}
	// t=10 is a quarter period: sin = 1, diurnal peak 1.5; inside the
	// surge window that composes to 6.
	if got := env(10); math.Abs(got-6) > 1e-9 {
		t.Fatalf("envelope(10) = %g, want 6", got)
	}
	// t=20: surge over, sin(pi) = 0 -> envelope 1.
	if got := env(20); math.Abs(got-1) > 1e-9 {
		t.Fatalf("envelope(20) = %g, want 1", got)
	}
	// The envelope never touches zero anywhere on the horizon.
	for x := 0.0; x < s.DurationSeconds; x += 0.25 {
		if env(x) <= 0 {
			t.Fatalf("envelope(%g) = %g, not strictly positive", x, env(x))
		}
	}
	if _, err := tl.Envelope("nope"); err == nil {
		t.Fatal("Envelope accepted unknown tenant")
	}
}

func TestArrivalsFollowEnvelope(t *testing.T) {
	s := minimal()
	s.Tenants[0].BaseRate = 50
	s.Tenants[0].Surges = []SurgeSpec{{From: 0, Until: 50, Factor: 4}}
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := tl.Arrivals("a")
	if err != nil {
		t.Fatal(err)
	}
	if ap.MeanRate() != 50 {
		t.Fatalf("MeanRate = %g, want base 50", ap.MeanRate())
	}
	rng := stats.NewRNG(7)
	clock, inSurge, after := 0.0, 0, 0
	for clock < 100 {
		clock += ap.NextInterArrival(rng)
		if clock < 50 {
			inSurge++
		} else if clock < 100 {
			after++
		}
	}
	// 4x the rate in the first half: expect ~10000 vs ~2500.
	ratio := float64(inSurge) / float64(after)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("surge ratio %g (in=%d after=%d), want about 4", ratio, inSurge, after)
	}
}

func TestServiceDist(t *testing.T) {
	s := minimal()
	s.Tenants = append(s.Tenants, TenantSpec{Name: "b", BaseRate: 1, ServiceTailAlpha: 2.5})
	tl, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tl.Service("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(stats.Exponential); !ok {
		t.Fatalf("default service = %T, want Exponential", d)
	}
	if math.Abs(d.Mean()-0.5) > 1e-12 {
		t.Fatalf("exponential mean %g, want 0.5", d.Mean())
	}
	d, err = tl.Service("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(stats.Pareto); !ok {
		t.Fatalf("tailed service = %T, want Pareto", d)
	}
	if math.Abs(d.Mean()-0.5) > 1e-12 {
		t.Fatalf("Pareto mean %g, want pinned to 0.5", d.Mean())
	}
	if _, err := tl.Service("nope", 2); err == nil {
		t.Fatal("Service accepted unknown tenant")
	}
}

func TestScaledPreservesStructure(t *testing.T) {
	s := Chaos()
	half := s.Scaled(0.5)
	if half.DurationSeconds != s.DurationSeconds/2 {
		t.Fatalf("scaled duration %g", half.DurationSeconds)
	}
	if half.Tenants[0].BaseRate != s.Tenants[0].BaseRate {
		t.Fatal("Scaled changed a rate")
	}
	if half.Tenants[0].Diurnal.PeriodSeconds != s.Tenants[0].Diurnal.PeriodSeconds/2 {
		t.Fatal("Scaled missed the diurnal period")
	}
	if half.Tenants[1].Surges[0].Factor != s.Tenants[1].Surges[0].Factor {
		t.Fatal("Scaled changed a surge factor")
	}
	if half.Churn.Kills[0].At != s.Churn.Kills[0].At/2 || half.Churn.Kills[0].Down != s.Churn.Kills[0].Down/2 {
		t.Fatal("Scaled missed the kill window")
	}
	if half.Policy[0].At != s.Policy[0].At/2 {
		t.Fatal("Scaled missed the policy change")
	}
	if half.Decommissions[0].At != s.Decommissions[0].At/2 {
		t.Fatal("Scaled missed the decommission")
	}
	// The original is untouched (deep copy).
	if s.Tenants[0].Diurnal.PeriodSeconds != 720 {
		t.Fatal("Scaled mutated the source spec")
	}
	if _, err := Compile(half); err != nil {
		t.Fatalf("scaled chaos does not compile: %v", err)
	}
}

func TestChaosCompiles(t *testing.T) {
	tl, err := Compile(Chaos())
	if err != nil {
		t.Fatal(err)
	}
	if tl.Horizon() != 1440 {
		t.Fatalf("horizon %g", tl.Horizon())
	}
	if n := len(tl.Events()); n == 0 {
		t.Fatal("chaos compiled to an empty timeline")
	}
	// Both tenants must resolve arrivals and service.
	for _, name := range []string{"gold", "bronze"} {
		if _, err := tl.Arrivals(name); err != nil {
			t.Fatal(err)
		}
		if _, err := tl.Service(name, 2); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParseStrictness(t *testing.T) {
	good, err := json.Marshal(Chaos())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Parse(good); err != nil {
		t.Fatalf("round-tripped chaos spec rejected: %v", err)
	}
	if _, _, err := Parse([]byte(`{"name":"x","duration_seconds":10,"tenants":[{"name":"a","base_rate":1}],"typo_field":1}`)); err == nil {
		t.Fatal("Parse accepted an unknown field")
	}
	if _, _, err := Parse([]byte(`{"name":"x","duration_seconds":10,"tenants":[{"name":"a","base_rate":1}]}{}`)); err == nil {
		t.Fatal("Parse accepted trailing data")
	}
	if _, _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("Parse accepted garbage")
	}
	if _, _, err := Load("testdata/does-not-exist.json"); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

func TestEventString(t *testing.T) {
	for _, e := range []Event{
		{At: 5, Kind: KindFail, Machine: 2},
		{At: 5, Kind: KindPriority, Tenant: "a", Priority: 3},
		{At: 5, Kind: KindSurgeStart, Tenant: "a", Factor: 2},
		{At: 5, Kind: Kind(99)},
	} {
		if e.String() == "" {
			t.Fatalf("empty String for %#v", e)
		}
	}
	if KindStragglerOn.String() != "straggler-on" {
		t.Fatal("Kind.String mismatch")
	}
}
