package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// splitterBolt emits even values on the default stream and odd values on
// the "side" stream.
type splitterBolt struct{}

func (splitterBolt) Process(t Tuple, emit Emit) error {
	v := t.Values[0].(int)
	if v%2 == 0 {
		emit(Values{v})
	} else {
		emit.To("side")(Values{v})
	}
	return nil
}

func TestNamedStreamRouting(t *testing.T) {
	const n = 200
	var evens, odds atomic.Int64
	var wrongEven, wrongOdd atomic.Int64
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("split", 4, func(int) Bolt { return splitterBolt{} }).
		Bolt("evensink", 2, func(int) Bolt {
			return BoltFunc(func(t Tuple, _ Emit) error {
				evens.Add(1)
				if t.Values[0].(int)%2 != 0 {
					wrongEven.Add(1)
				}
				return nil
			})
		}).
		Bolt("oddsink", 2, func(int) Bolt {
			return BoltFunc(func(t Tuple, _ Emit) error {
				odds.Add(1)
				if t.Values[0].(int)%2 != 1 {
					wrongOdd.Add(1)
				}
				return nil
			})
		}).
		Shuffle("src", "split").
		Shuffle("split", "evensink").          // default stream
		ShuffleOn("side", "split", "oddsink"). // named stream
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"split": 2, "evensink": 1, "oddsink": 1})
	waitCompleted(t, run, n)
	if evens.Load() != n/2 || odds.Load() != n/2 {
		t.Errorf("evens/odds = %d/%d, want %d each", evens.Load(), odds.Load(), n/2)
	}
	if wrongEven.Load() != 0 || wrongOdd.Load() != 0 {
		t.Errorf("misrouted tuples: %d to evensink, %d to oddsink", wrongEven.Load(), wrongOdd.Load())
	}
}

func TestNamedStreamWithoutSubscriberDropsCleanly(t *testing.T) {
	// Emissions on a stream nobody subscribed to must not wedge the tree.
	const n = 50
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("emitter", 2, func(int) Bolt {
			return BoltFunc(func(t Tuple, emit Emit) error {
				emit.To("nowhere")(Values{t.Values[0]})
				return nil
			})
		}).
		Shuffle("src", "emitter").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"emitter": 1})
	waitCompleted(t, run, n)
}

func TestSpoutCannotUseNamedStreams(t *testing.T) {
	okSpout := func(int) Spout { return &burstSpout{n: 0} }
	okBolt := func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }
	_, err := NewTopology().
		Spout("s", 1, okSpout).
		Bolt("b", 1, okBolt).
		ShuffleOn("stream", "s", "b").
		Build()
	if err == nil {
		t.Error("spout edge on a named stream should be rejected")
	}
}

func TestFieldsOnNamedStream(t *testing.T) {
	const n = 100
	var mu atomicMap
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout {
			return &burstSpout{n: n, values: func(i int) Values { return Values{i % 5} }}
		}).
		Bolt("relay", 2, func(int) Bolt {
			return BoltFunc(func(t Tuple, emit Emit) error {
				emit.To("keyed")(Values{t.Values[0]})
				return nil
			})
		}).
		Bolt("sink", 8, func(task int) Bolt {
			return BoltFunc(func(t Tuple, _ Emit) error {
				mu.record(t.Values[0].(int), task)
				return nil
			})
		}).
		Shuffle("src", "relay").
		FieldsOn("keyed", "relay", "sink", func(v Values) uint64 { return uint64(v[0].(int)) }).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"relay": 1, "sink": 3})
	waitCompleted(t, run, n)
	if mu.conflicted() {
		t.Error("FieldsOn sent one key to multiple tasks")
	}
	if _, err := NewTopology().
		Spout("s", 1, func(int) Spout { return &burstSpout{n: 0} }).
		Bolt("a", 1, func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }).
		FieldsOn("x", "a", "a", nil).
		Build(); err == nil {
		t.Error("nil key on FieldsOn should be rejected")
	}
}

// atomicMap tracks key->task with conflict detection.
type atomicMap struct {
	mu       sync.Mutex
	keyTask  map[int]int
	conflict bool
}

func (m *atomicMap) record(key, task int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.keyTask == nil {
		m.keyTask = make(map[int]int)
	}
	if prev, ok := m.keyTask[key]; ok && prev != task {
		m.conflict = true
	}
	m.keyTask[key] = task
}

func (m *atomicMap) conflicted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.conflict
}

// failingSpout errors immediately.
type failingSpout struct{}

func (failingSpout) Run(SpoutContext) error { return errors.New("source disconnected") }

func TestSpoutFailureIsIsolated(t *testing.T) {
	// One of two spout instances dies; the topology keeps processing from
	// the survivor and the failure is reported.
	collector, factory := sharedCollector()
	_ = collector
	topo, err := NewTopology().
		Spout("src", 2, func(instance int) Spout {
			if instance == 1 {
				return failingSpout{}
			}
			return &pacedSpout{period: time.Millisecond}
		}).
		Bolt("sink", 2, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 1})
	waitCompleted(t, run, 50) // survivor still delivers
	count, last := run.SpoutErrors()
	if count != 1 {
		t.Errorf("spout error count = %d, want 1", count)
	}
	if last == nil {
		t.Error("spout failure not retained")
	}
}
