package engine

import (
	"errors"
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/obs"
)

// Remote executor destinations. A bolt's route table normally points every
// task at a local executor — a goroutine draining an in-process queue. This
// file makes the destination pluggable: BindExecutor swaps any route-table
// slot to a RemoteExecutor, a transport that ships tuple batches to an
// executor hosted in another process (the worker daemon) and brings the
// emitted children back. The serve-side engine keeps the whole ack story —
// processing trees, root log, WAL watermark — so accounting is identical
// whether an executor is a goroutine or a machine across the network:
//
//   - outbound: the drain loop pops the executor's queue exactly like the
//     local hot loop, pins each batch (the tuples' trees stay resolvable),
//     and hands it to the transport with a bounded in-flight window;
//   - inbound: the transport's completion callback applies the remotely
//     emitted children through a normal emitter (fork before enqueue, so a
//     partial delivery can never complete a tree early) and acks each input
//     tuple's tree — the same sequence runExecutor performs inline;
//   - failure: a transport error replays the affected batch through the
//     current route table (at-least-once, never ack-without-processing) and
//     self-heals the binding by swapping in a local replacement, exactly the
//     FailExecutor recovery path.
//
// Exactly-once applies at the engine's accounting layer (each tree resolves
// once); the application-level guarantee stays at-least-once: a batch whose
// result frame was lost re-executes, bounded by the in-flight window
// (RemoteInflight batches of RemoteBatchCap tuples per executor).

// RemoteBatchCap bounds how many tuples one ProcessBatch call carries.
const RemoteBatchCap = 256

// RemoteInflight bounds how many ProcessBatch calls may be awaiting their
// completion callback per remote-bound executor. Together with
// RemoteBatchCap it caps the duplicate window of a worker crash: at most
// RemoteInflight × RemoteBatchCap tuples per executor can have been
// processed remotely without their results applied, and only those can
// re-execute after a replay.
const RemoteInflight = 4

// errRemoteProcess is recorded as a bolt's last error when a remote worker
// reports tuple-processing failures in a result batch.
var errRemoteProcess = errors.New("engine: remote executor reported processing errors")

// RemoteItem is one tuple bound for a remote executor: the task index that
// must process it (task-local bolt state lives with the worker) and the
// tuple payload.
type RemoteItem struct {
	// Task is the destination task within the bolt.
	Task int
	// Values is the tuple payload.
	Values Values
	// Traced marks a tuple whose processing tree carries a sampled trace
	// id: the transport ships the flag with the batch and the worker
	// measures this item's queue wait and service time individually,
	// reporting them back through the result's trace block.
	Traced bool
}

// RemoteResult is the outcome of one remotely processed batch.
type RemoteResult struct {
	// Emitted holds, per input item (index-aligned with the ProcessBatch
	// items), the payloads that item's processing emitted, stream tags
	// in-band as produced by Emit.To. It is valid only during the done
	// callback: transports reuse their decode buffers across frames.
	Emitted [][]Values
	// Served, Sampled, BusyNanos and BusySqMicros are the executor-probe
	// aggregates measured where the CPU burned — on the worker — folded
	// into the serve-side probe so the measurer's service-time estimate
	// reflects remote execution without the network in it.
	Served, Sampled, BusyNanos, BusySqMicros int64
	// Errors counts items whose Process call failed on the worker.
	Errors int64
	// TraceIdx lists, in ascending order, the batch indices of items the
	// worker measured individually (those sent with Traced set); TraceWaitNS
	// and TraceServiceNS align with it. The wait is measured from the
	// batch's arrival at the worker to that item's Process start, and the
	// service time is the worker-local Process duration — both on the
	// worker's own clock, so they are clock-skew-free durations. Like
	// Emitted, the slices are valid only during the done callback.
	TraceIdx                    []uint32
	TraceWaitNS, TraceServiceNS []int64
}

// RemoteExecutor ships tuple batches to an executor hosted outside this
// process. Implementations must honor this contract:
//
//   - ProcessBatch either returns a non-nil error — then done is never
//     called and the caller keeps the items — or returns nil and guarantees
//     done is invoked exactly once, possibly before ProcessBatch returns and
//     possibly on a different goroutine (a connection reader).
//   - done callbacks issued by one transport are serialized (never two
//     concurrently), and must not block indefinitely.
//   - ProcessBatch must not block indefinitely: transports enforce their own
//     write deadlines and fail pending batches when the peer dies.
//   - items and the RemoteResult are borrowed: items may be reused by the
//     caller after ProcessBatch returns (encode synchronously), and the
//     result is valid only during the done call.
//   - values must be comparable (implementations are pointers): the engine
//     uses == to make BindExecutor idempotent.
type RemoteExecutor interface {
	ProcessBatch(bolt string, items []RemoteItem, done func(RemoteResult, error)) error
}

// StreamTagValue returns the in-band stream marker Emit.To prefixes to a
// payload, so transports can reconstruct stream-tagged emissions when
// decoding remote results.
func StreamTagValue(stream string) any { return streamTag(stream) }

// StreamTagString reports whether v is a stream marker and, if so, the
// stream name — the encode-side counterpart of StreamTagValue.
func StreamTagString(v any) (string, bool) {
	t, ok := v.(streamTag)
	return string(t), ok
}

// BindExecutor points one of a bolt's route-table slots at a remote
// destination (or back at a local goroutine when remote is nil). The swap
// reuses the crash-recovery machinery: the replacement is installed first,
// inheriting the victim's probe, then the victim drains out and its backlog
// replays onto the successor — so rebinding mid-traffic loses nothing.
// Binding the executor to the RemoteExecutor value it already has is a
// no-op. Note a Rebalance rebuilds a bolt's executors local; callers owning
// a placement re-apply their bindings after every allocation change.
func (r *Run) BindExecutor(bolt string, exec int, remote RemoteExecutor) error {
	if r.stopped.Load() {
		return ErrStopped
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped.Load() {
		return ErrStopped
	}
	br := r.boltByName(bolt)
	if br == nil {
		return errUnknownBolt(bolt)
	}
	rt := br.route.Load()
	if exec < 0 || exec >= len(rt.execs) {
		return errExecRange(bolt, exec, len(rt.execs))
	}
	victim := rt.execs[exec]
	if victim.remote == remote {
		return nil
	}
	r.swapExecutorLocked(br, exec, remote)
	r.reapExecutorLocked(br, victim)
	return nil
}

// RemoteBound reports how many of a bolt's executors are currently bound to
// remote destinations.
func (r *Run) RemoteBound(bolt string) (int, error) {
	for _, br := range r.bolts {
		if br.spec.name != bolt {
			continue
		}
		n := 0
		for _, ex := range br.route.Load().execs {
			if ex.remote != nil {
				n++
			}
		}
		return n, nil
	}
	return 0, errUnknownBolt(bolt)
}

// pinBatch pins the queue items of one in-flight remote batch — tree
// references included — until the transport's done callback resolves them.
// Pins recycle through a pool so the steady shuttle path allocates nothing.
type pinBatch struct {
	items []queueItem
}

var pinPool = sync.Pool{New: func() any {
	return &pinBatch{items: make([]queueItem, 0, RemoteBatchCap)}
}}

func getPin() *pinBatch { return pinPool.Get().(*pinBatch) }

func (p *pinBatch) put() {
	clear(p.items)
	p.items = p.items[:0]
	pinPool.Put(p)
}

// runRemoteExecutor is the drain loop of a remote-bound executor: the same
// popAll cadence as the local hot loop, but each batch ships through the
// transport instead of a Process call. The in-flight window (sem) bounds
// unacked batches; the kill channel unblocks the window wait when a reaper
// needs this goroutine gone while the transport is wedged.
func (r *Run) runRemoteExecutor(br *boltRuntime, ex *executor) {
	defer r.execWG.Done()
	defer close(ex.done)
	// The emitter is touched only inside done callbacks, which the
	// transport serializes; the drain loop itself never uses it.
	em := newEmitter(r)
	tracer := r.cfg.Tracer
	var spare []queueItem
	items := make([]RemoteItem, RemoteBatchCap)
	for {
		ring, head, n, ok := ex.q.popAll(spare)
		if !ok {
			return
		}
		mask := len(ring) - 1
		for base := 0; base < n; {
			// A crash (reap) ends the drain at a batch boundary; the
			// unsent remainder strands for the reaper to replay.
			if ex.crashed.Load() {
				ex.strandRing(ring, head+base, n-base)
				return
			}
			cnt := n - base
			if cnt > RemoteBatchCap {
				cnt = RemoteBatchCap
			}
			select {
			case ex.sem <- struct{}{}:
			case <-ex.kill:
				ex.strandRing(ring, head+base, n-base)
				return
			}
			pin := getPin()
			hasTraced := false
			for i := 0; i < cnt; i++ {
				it := ring[(head+base+i)&mask]
				pin.items = append(pin.items, it)
				traced := tracer != nil && it.tup.tree.trace != 0
				hasTraced = hasTraced || traced
				items[i] = RemoteItem{Task: it.task, Values: it.tup.Values, Traced: traced}
			}
			// The send stamp anchors the batch's shuttle segments; untraced
			// batches pay no clock read.
			var sentNS int64
			if hasTraced {
				sentNS = time.Now().UnixNano()
			}
			err := ex.remote.ProcessBatch(br.spec.name, items[:cnt], func(res RemoteResult, rerr error) {
				defer func() { <-ex.sem }()
				if rerr != nil {
					r.replayPin(br, ex, pin)
					return
				}
				r.applyRemote(br, em, ex, pin, res, sentNS)
			})
			if err != nil {
				<-ex.sem
				// This batch was pinned but never handed off; it strands
				// together with the ring remainder, and the binding
				// self-heals to a local replacement.
				ex.strandPin(pin)
				ex.strandRing(ring, head+base+cnt, n-base-cnt)
				r.failRemoteBinding(br, ex)
				return
			}
			base += cnt
		}
		for i := 0; i < n; i++ {
			ring[(head+i)&mask] = queueItem{}
		}
		spare = ring
	}
}

// applyRemote applies one remote result batch: each input tuple's emitted
// children route through a normal emitter (fork-before-enqueue preserved)
// and its tree acks — the exact sequence the local hot loop performs inline
// — then the worker-measured probe aggregates fold into the executor probe.
//
// Traced items decompose their remote hop into three telescoping segments
// on the serve-side clock: queue wait = (send − handoff) + worker wait,
// service = the worker-measured duration, shuttle = the round trip minus
// both — summing exactly to recv − handoff, so the trace's segment sum
// still reconciles with the root sojourn even though the service ran on
// another machine's clock. Children of a traced item hand off at recv.
func (r *Run) applyRemote(br *boltRuntime, em *emitter, ex *executor, pin *pinBatch, res RemoteResult, sentNS int64) {
	tracer := r.cfg.Tracer
	var recv time.Time
	var recvNS int64
	if tracer != nil && len(res.TraceIdx) > 0 {
		recv = time.Now()
		recvNS = recv.UnixNano()
		em.handoff = recvNS
	}
	traceCur := 0
	var span obs.SpanRecord // reused scratch; EmitSpan copies it out
	for i := range pin.items {
		tree := pin.items[i].tup.tree
		traced := recvNS != 0 && traceCur < len(res.TraceIdx) && int(res.TraceIdx[traceCur]) == i
		em.begin(tree)
		if traced {
			// Spans go into the tracer's rings before this item's children
			// are enqueued (happens-before the root span; see runExecutor).
			handoff := pin.items[i].tup.handoff
			waitNS := res.TraceWaitNS[traceCur]
			svcNS := res.TraceServiceNS[traceCur]
			traceCur++
			task := pin.items[i].task
			span = obs.SpanRecord{Trace: tree.trace, Kind: obs.SpanQueue, Bolt: br.spec.name,
				Task: task, Remote: true, StartNS: handoff, DurNS: (sentNS - handoff) + waitNS}
			tracer.EmitSpan(&span)
			span = obs.SpanRecord{Trace: tree.trace, Kind: obs.SpanService, Bolt: br.spec.name,
				Task: task, Remote: true, StartNS: sentNS + waitNS, DurNS: svcNS}
			tracer.EmitSpan(&span)
			span = obs.SpanRecord{Trace: tree.trace, Kind: obs.SpanShuttle, Bolt: br.spec.name,
				Task: task, Remote: true, StartNS: sentNS, DurNS: (recvNS - sentNS) - waitNS - svcNS}
			tracer.EmitSpan(&span)
			tree.noteEnd(recvNS)
		}
		if i < len(res.Emitted) {
			for _, v := range res.Emitted[i] {
				em.emit(br.outEdges, v)
			}
		}
		em.flush()
		if traced {
			tree.ack(recv)
		} else {
			tree.ackLazy()
		}
	}
	if res.Errors > 0 {
		br.errCount.Add(res.Errors)
		held := errRemoteProcess
		br.lastErr.Store(&held)
	}
	ex.probe.TuplesServed(res.Served, res.Sampled, res.BusyNanos, res.BusySqMicros)
	pin.put()
}

// replayPin re-delivers a batch whose transport failed after handoff
// through the bolt's current route table — the tuples may have been
// processed remotely (the result was lost), so this is the at-least-once
// re-execution window — and triggers the binding's self-heal.
func (r *Run) replayPin(br *boltRuntime, ex *executor, pin *pinBatch) {
	for _, it := range pin.items {
		if !r.redeliverItem(br, it) {
			it.tup.tree.ackLazy() // shutdown raced the failure
		}
	}
	pin.put()
	r.failRemoteBinding(br, ex)
}

// healReq asks for one failed remote binding to be swapped local and
// reaped. Requests queue under their own lock so they can be filed while
// r.mu is held (a quiescing Rebalance) and drained by whoever holds it.
type healReq struct {
	br *boltRuntime
	ex *executor
}

// failRemoteBinding swaps a failed remote binding for a local replacement
// and reaps the victim — FailExecutor's recovery, triggered by the
// transport instead of injected. The request is queued (the trigger may be
// a connection reader that must keep draining completion callbacks, or the
// victim's own drain loop, which must exit before the reap can finish) and
// filed at most once per executor; it is served by an async goroutine or,
// when a quiescing Rebalance holds r.mu, by the quiesce loop itself — a
// dead binding's backlog pins its tuple trees until the heal runs, so the
// drain must be able to perform it. A concurrent Rebalance/BindExecutor
// that already swapped the victim out wins, having reaped it itself.
func (r *Run) failRemoteBinding(br *boltRuntime, ex *executor) {
	ex.failOnce.Do(func() {
		r.healMu.Lock()
		r.healQ = append(r.healQ, healReq{br: br, ex: ex})
		r.healMu.Unlock()
		go func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.drainHealsLocked()
		}()
	})
}

// drainHealsLocked serves every queued remote-binding heal: install a
// local replacement (unless the run is stopping) and reap the victim,
// replaying its backlog. Each request is dequeued exactly once; a victim
// that some other swap already removed from the route table needs nothing.
// Caller holds r.mu.
func (r *Run) drainHealsLocked() {
	for {
		r.healMu.Lock()
		q := r.healQ
		r.healQ = nil
		r.healMu.Unlock()
		if len(q) == 0 {
			return
		}
		for _, h := range q {
			rt := h.br.route.Load()
			idx := -1
			for i, e := range rt.execs {
				if e == h.ex {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue // already swapped out and reaped
			}
			if !r.stopped.Load() {
				r.swapExecutorLocked(h.br, idx, nil)
			}
			r.reapExecutorLocked(h.br, h.ex)
			r.execFailures.Add(1)
			if r.cfg.DecisionLog != nil {
				r.cfg.DecisionLog.Emit(&obs.Record{
					Kind: obs.KindHeal, Peer: h.br.spec.name, To: idx,
					Detail: "remote binding swapped local",
				})
			}
		}
	}
}

// boltByName finds a bolt's runtime, or nil.
func (r *Run) boltByName(bolt string) *boltRuntime {
	for _, br := range r.bolts {
		if br.spec.name == bolt {
			return br
		}
	}
	return nil
}
