package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/obs"
)

// ErrQuiesceTimeout is returned when a rebalance cannot drain in-flight
// tuples in time; the topology keeps its previous configuration.
var ErrQuiesceTimeout = errors.New("engine: quiesce timeout; rebalance aborted")

// ErrStopped is returned for operations on a stopped run.
var ErrStopped = errors.New("engine: topology stopped")

// RunConfig parameterizes Start.
type RunConfig struct {
	// Alloc maps bolt name to executor count. Every bolt must be present;
	// counts must be in [1, tasks].
	Alloc map[string]int
	// SampleEveryNm is the probe sampling stride (paper's Nm). Default 1.
	SampleEveryNm int
	// QuiesceTimeout bounds the drain wait during rebalance and stop.
	// Default 10s.
	QuiesceTimeout time.Duration
	// TupleTimeout, when positive, counts external tuples whose processing
	// tree does not complete within the window — Storm's message-timeout
	// signal, exposed via LateTuples. Zero disables tracking.
	TupleTimeout time.Duration
	// DecisionLog, when set, receives engine self-heal events (a failed
	// remote binding swapped for a local replacement). Emission happens on
	// the heal path, never per tuple.
	DecisionLog *obs.Log
	// Tracer, when set, receives latency spans for roots whose trees carry
	// a sampled trace id (see TracedSpoutContext): per-hop queue-wait and
	// service segments, remote shuttle segments, and the closing root
	// span. Untraced tuples pay one branch per hop; sampled-out roots pay
	// nothing here at all (sampling is decided at the source).
	Tracer *obs.Tracer
}

// executor is one processor: a goroutine draining an input queue, either
// into local Process calls or into a remote transport (see remote.go).
type executor struct {
	q     *queue
	probe *metrics.ExecutorProbe
	done  chan struct{}
	// crashed is the failure-injection kill switch: the executor checks it
	// at every tuple boundary and, when set, abandons the unprocessed tail
	// of its in-progress batch for replay instead of draining it — a real
	// crash does not get to finish its backlog.
	crashed atomic.Bool

	// Remote-binding state; all nil/zero for local executors.
	remote RemoteExecutor
	// sem is the in-flight window: one slot per unacked ProcessBatch.
	sem chan struct{}
	// kill unblocks a drain loop parked on the in-flight window when the
	// transport is wedged and a reaper needs the goroutine gone.
	kill     chan struct{}
	killOnce sync.Once
	// failOnce gates the transport-triggered self-heal (failRemoteBinding).
	failOnce sync.Once
	// stranded collects items the dying drain loop could not hand off;
	// the reaper replays them after the goroutine exits.
	strandMu sync.Mutex
	stranded []queueItem
}

// killRemote releases a remote drain loop blocked on its in-flight window.
// No-op for local executors.
func (ex *executor) killRemote() {
	if ex.kill != nil {
		ex.killOnce.Do(func() { close(ex.kill) })
	}
}

// strandRing parks the unhandled ring tail [start, start+count) for the
// reaper. Called only by the executor's own drain loop before it exits.
func (ex *executor) strandRing(ring []queueItem, start, count int) {
	if count <= 0 {
		return
	}
	mask := len(ring) - 1
	ex.strandMu.Lock()
	for i := 0; i < count; i++ {
		ex.stranded = append(ex.stranded, ring[(start+i)&mask])
	}
	ex.strandMu.Unlock()
}

// strandPin parks a pinned batch that was never handed to the transport.
func (ex *executor) strandPin(pin *pinBatch) {
	ex.strandMu.Lock()
	ex.stranded = append(ex.stranded, pin.items...)
	ex.strandMu.Unlock()
	pin.put()
}

// takeStranded drains the strand buffer; the reaper calls it once, after
// the executor goroutine has exited (so no strand can race it).
func (ex *executor) takeStranded() []queueItem {
	ex.strandMu.Lock()
	out := ex.stranded
	ex.stranded = nil
	ex.strandMu.Unlock()
	return out
}

// routeTable is the immutable task->executor assignment of one bolt,
// swapped atomically on rebalance.
type routeTable struct {
	execs  []*executor
	assign []int // task -> index into execs
}

// boltRuntime is the running state of one bolt. Shuffle round-robin
// cursors live in each emitter, not here, so routing is contention-free.
type boltRuntime struct {
	spec      boltSpec
	instances []Bolt // one per task; owned by whichever executor holds the task
	route     atomic.Pointer[routeTable]
	outEdges  []int
	errCount  atomic.Int64
	lastErr   atomic.Pointer[error]
	// Cumulative per-bolt tuple counters, folded from the probes by
	// DrainInterval. Probes reset on rebalance (fresh executors get fresh
	// probes), so monotonic exports must accumulate here, off the hot
	// path, instead of reading the probes directly.
	cumArrivals atomic.Int64
	cumServed   atomic.Int64
}

// spoutRuntime is one spout's running state.
type spoutRuntime struct {
	spec     spoutSpec
	outEdges []int
}

// Run is a started topology.
type Run struct {
	topo *Topology
	cfg  RunConfig

	bolts  []*boltRuntime
	spouts []*spoutRuntime

	roots  rootLog
	paused atomic.Bool

	spoutErrCount atomic.Int64
	spoutLastErr  atomic.Pointer[error]
	timeouts      *timeoutWatch

	// Failure-domain accounting: executor crashes injected, and tuples
	// re-delivered after landing on (or being bound for) a dead executor.
	execFailures atomic.Int64
	replayed     atomic.Int64

	// Pending remote-binding heals (see failRemoteBinding). Guarded by
	// healMu — its own lock, NOT r.mu — so a heal can be requested while
	// r.mu is held by a quiescing Rebalance, and the quiesce loop itself
	// can drain the queue to keep the drain making progress.
	healMu sync.Mutex
	healQ  []healReq

	drainMu   sync.Mutex // serializes DrainInterval; guards the last* fields
	lastDrain time.Time
	// last root-log fold of the previous drain; intervals are differences.
	lastStarted   int64
	lastCompleted int64
	lastNanos     int64

	mu        sync.Mutex // serializes Rebalance/Stop; guards lastMoves
	lastMoves map[string]int
	stopped   atomic.Bool
	done      chan struct{}
	wg        sync.WaitGroup // spout goroutines
	execWG    sync.WaitGroup // executor goroutines
}

// Start launches the topology.
func (t *Topology) Start(cfg RunConfig) (*Run, error) {
	if cfg.SampleEveryNm <= 0 {
		cfg.SampleEveryNm = 1
	}
	if cfg.QuiesceTimeout <= 0 {
		cfg.QuiesceTimeout = 10 * time.Second
	}
	r := &Run{
		topo:      t,
		cfg:       cfg,
		done:      make(chan struct{}),
		lastDrain: time.Now(),
		timeouts:  &timeoutWatch{timeout: cfg.TupleTimeout},
	}
	r.bolts = make([]*boltRuntime, len(t.bolts))
	for i, spec := range t.bolts {
		n, ok := cfg.Alloc[spec.name]
		if !ok {
			return nil, fmt.Errorf("engine: no allocation for bolt %q", spec.name)
		}
		if n < 1 || n > spec.tasks {
			return nil, fmt.Errorf("engine: bolt %q: %d executors out of [1, %d tasks]", spec.name, n, spec.tasks)
		}
		br := &boltRuntime{spec: spec, instances: make([]Bolt, spec.tasks)}
		for task := 0; task < spec.tasks; task++ {
			br.instances[task] = spec.factory(task)
			if br.instances[task] == nil {
				return nil, fmt.Errorf("engine: bolt %q: factory returned nil for task %d", spec.name, task)
			}
		}
		r.bolts[i] = br
	}
	r.spouts = make([]*spoutRuntime, len(t.spouts))
	for i, spec := range t.spouts {
		r.spouts[i] = &spoutRuntime{spec: spec}
	}
	for ei, e := range t.edges {
		if e.fromSpout {
			r.spouts[e.from].outEdges = append(r.spouts[e.from].outEdges, ei)
		} else {
			r.bolts[e.from].outEdges = append(r.bolts[e.from].outEdges, ei)
		}
	}
	// Spin up executors per the initial allocation, then the spouts.
	for i, br := range r.bolts {
		r.installExecutors(br, cfg.Alloc[t.bolts[i].name])
	}
	for si, sr := range r.spouts {
		for inst := 0; inst < sr.spec.instances; inst++ {
			spout := sr.spec.factory(inst)
			if spout == nil {
				r.shutdownExecutors()
				return nil, fmt.Errorf("engine: spout %q: factory returned nil for instance %d", sr.spec.name, inst)
			}
			r.wg.Add(1)
			go r.runSpout(si, inst, spout)
		}
	}
	return r, nil
}

// installExecutors builds a fresh executor set for a bolt. On the first
// install tasks are spread round-robin; on a rebalance the new assignment
// is migration-aware — it keeps as many tasks as possible on their current
// executor index (planAssignment), minimizing moved state per the paper's
// future-work direction [42]. It returns how many tasks changed executor.
func (r *Run) installExecutors(br *boltRuntime, n int) int {
	old := br.route.Load()
	rt := &routeTable{execs: make([]*executor, n)}
	moved := 0
	if old == nil {
		rt.assign = make([]int, br.spec.tasks)
		for task := 0; task < br.spec.tasks; task++ {
			rt.assign[task] = task % n
		}
	} else {
		rt.assign, moved = planAssignment(old.assign, len(old.execs), n)
	}
	for i := 0; i < n; i++ {
		ex := &executor{
			q:     newQueue(),
			probe: metrics.NewExecutorProbe(r.cfg.SampleEveryNm),
			done:  make(chan struct{}),
		}
		rt.execs[i] = ex
		r.execWG.Add(1)
		go r.runExecutor(br, ex)
	}
	br.route.Store(rt)
	return moved
}

// runExecutor is the executor hot loop: it drains its input queue in
// batches (one lock round per batch) and processes each tuple with a
// reusable emitter, so a bolt's fan-out costs one enqueue per destination
// executor. Clock reads follow the Nm sampling stride: only sampled
// tuples are timed (their end stamp also serves as the ack time and, at
// Nm = 1, the next tuple's start), so raising Nm sheds measurement
// overhead exactly as the paper intends.
func (r *Run) runExecutor(br *boltRuntime, ex *executor) {
	defer r.execWG.Done()
	defer close(ex.done)
	em := newEmitter(r)
	emit := Emit(func(v Values) { em.emit(br.outEdges, v) })
	tracer := r.cfg.Tracer
	var span obs.SpanRecord // reused span scratch; EmitSpan copies it out
	var spare []queueItem   // cleared ring handed back to the queue each round
	nm := ex.probe.SampleStride()
	var sinceSample int64 // stride phase, carried across batches
	var now time.Time     // start-of-service mark, valid only when chained
	chained := false      // now holds the previous timed tuple's end
	for {
		ring, head, n, ok := ex.q.popAll(spare)
		if !ok {
			return
		}
		chained = false // popAll may have blocked; the old end is stale
		mask := len(ring) - 1
		// Probe observations accumulate locally and fold into the shared
		// probe once per batch.
		var sampled, busyNanos, busySqMicros int64
		for i := 0; i < n; i++ {
			// A crash ends service at the tuple boundary: the batch's
			// unprocessed tail replays through the current route table
			// (one relaxed atomic load per tuple buys the failure domain).
			if ex.crashed.Load() {
				ex.probe.TuplesServed(int64(i), sampled, busyNanos, busySqMicros)
				r.replayRemainder(br, ring, head+i, n-i)
				return
			}
			it := &ring[(head+i)&mask]
			// A timed duration must cover exactly one tuple: read a fresh
			// start unless the previous tuple was timed too, in which case
			// its end is this tuple's start. Tuples that are neither
			// sampled nor traced pay no clock read at all.
			tree := it.tup.tree
			traced := tracer != nil && tree.trace != 0
			sampleThis := sinceSample+1 == nm
			if (sampleThis || traced) && !chained {
				now = time.Now()
			}
			em.begin(tree)
			if err := br.instances[it.task].Process(it.tup, emit); err != nil {
				br.errCount.Add(1)
				heldErr := err // escapes only on the error path
				br.lastErr.Store(&heldErr)
			}
			var end time.Time
			if traced {
				// The service end is read before the children are enqueued:
				// it is their queue-wait start (stampHandoffs), and both hop
				// spans must be in the tracer's rings before any enqueued
				// child can complete the root downstream — the assembler
				// counts on segment emission happening-before the root span.
				end = time.Now()
				startNS, endNS := now.UnixNano(), end.UnixNano()
				tree.noteEnd(endNS)
				em.stampHandoffs(endNS)
				span = obs.SpanRecord{Trace: tree.trace, Kind: obs.SpanQueue, Bolt: br.spec.name,
					Task: it.task, StartNS: it.tup.handoff, DurNS: startNS - it.tup.handoff}
				tracer.EmitSpan(&span)
				span = obs.SpanRecord{Trace: tree.trace, Kind: obs.SpanService, Bolt: br.spec.name,
					Task: it.task, StartNS: startNS, DurNS: endNS - startNS}
				tracer.EmitSpan(&span)
				em.flush()
			} else {
				em.flush()
				if sampleThis {
					end = time.Now()
				}
			}
			*it = queueItem{} // release references before handing the ring back
			switch {
			case sampleThis:
				sinceSample = 0
				d := end.Sub(now)
				sampled++
				busyNanos += int64(d)
				us := d.Microseconds()
				busySqMicros += us * us
				tree.ack(end)
				now = end
				chained = nm == 1
			case traced:
				sinceSample++
				// The traced ack carries the end stamp so a completing leaf
				// closes its trace exactly at its own service end.
				tree.ack(end)
				now = end
				chained = true
			default:
				sinceSample++
				chained = false
				// The tree reads its own clock in the rare case this ack
				// completes it.
				tree.ackLazy()
			}
		}
		ex.probe.TuplesServed(int64(n), sampled, busyNanos, busySqMicros)
		spare = ring
	}
}

// runSpout drives one spout instance. A failing spout ends that instance
// only; the topology keeps running on the remaining sources, and the error
// is retained for inspection.
func (r *Run) runSpout(si, instance int, spout Spout) {
	defer r.wg.Done()
	sc := &spoutCtx{run: r, spoutIdx: si, instance: instance,
		shard: treeShardSeq.Add(1), em: newEmitter(r)}
	if err := spout.Run(sc); err != nil && !errors.Is(err, ErrStopped) {
		r.spoutErrCount.Add(1)
		r.spoutLastErr.Store(&err)
	}
}

type spoutCtx struct {
	run      *Run
	spoutIdx int
	instance int
	shard    uint32 // root-log shard for batch start accounting
	em       *emitter
}

// Emit injects an external tuple: a new processing tree rooted now. The
// root's children are delivered through the spout's emitter, batched per
// destination executor.
func (c *spoutCtx) Emit(v Values) {
	r := c.run
	if r.stopped.Load() {
		return
	}
	now := time.Now()
	entry := r.timeouts.watch(now)
	tree := newRootFor(r, now, entry)
	r.roots.start(tree.shard)
	c.em.beginRoot(tree)
	c.em.emit(r.spouts[c.spoutIdx].outEdges, v)
	c.em.sealRoot(now) // the root "tuple" itself needs no processing
	c.em.pushDests()
}

// EmitBatch injects a batch of external tuples, each its own processing
// tree, sharing one clock read and — the point — one enqueue per
// destination executor for the whole batch. This is the source
// micro-batching path: a spout reading a partitioned log can hand the
// engine tens of tuples per call and pay the per-enqueue costs once.
func (c *spoutCtx) EmitBatch(vs []Values) {
	r := c.run
	if len(vs) == 0 || r.stopped.Load() {
		return
	}
	now := time.Now()
	edges := r.spouts[c.spoutIdx].outEdges
	// Count the whole batch as started before any root can complete
	// (a childless root completes inside its seal).
	r.roots.startN(c.shard, int64(len(vs)))
	for _, v := range vs {
		entry := r.timeouts.watch(now)
		tree := newRootFor(r, now, entry)
		c.em.beginRoot(tree)
		c.em.emit(edges, v)
		c.em.sealRoot(now)
	}
	c.em.pushDests()
}

// EmitBatchAcked is EmitBatch with a per-batch completion callback: done
// fires exactly once, after every root in the batch completes. The
// countdown is installed at the batch size before the first root is
// built, so a childless root completing inside its own seal cannot fire
// early. If the run is already stopped the batch is dropped *without*
// acking — an unprocessed record must never advance a durability
// watermark; it will be replayed from the log on the next boot.
func (c *spoutCtx) EmitBatchAcked(vs []Values, done func()) {
	r := c.run
	if len(vs) == 0 {
		done()
		return
	}
	if r.stopped.Load() {
		return
	}
	b := &batchAck{done: done}
	b.pending.Store(int64(len(vs)))
	now := time.Now()
	edges := r.spouts[c.spoutIdx].outEdges
	r.roots.startN(c.shard, int64(len(vs)))
	for _, v := range vs {
		entry := r.timeouts.watch(now)
		tree := newRootFor(r, now, entry)
		tree.batch = b
		c.em.beginRoot(tree)
		c.em.emit(edges, v)
		c.em.sealRoot(now)
	}
	c.em.pushDests()
}

// EmitBatchTraced is the TracedSpoutContext injection path: EmitBatchAcked
// semantics (done may be nil — then no completion tracking at all), plus
// each root whose traces[i] is nonzero inherits that trace id and the
// batch's arrival wall stamp. The stamp doubles as the emitter handoff, so
// a traced root's first hop measures queue wait from the moment the batch
// left the source ring.
func (c *spoutCtx) EmitBatchTraced(vs []Values, traces []uint64, done func()) {
	r := c.run
	if len(vs) == 0 {
		if done != nil {
			done()
		}
		return
	}
	// A stopped run drops without acking (see EmitBatchAcked).
	if r.stopped.Load() {
		return
	}
	var b *batchAck
	if done != nil {
		b = &batchAck{done: done}
		b.pending.Store(int64(len(vs)))
	}
	now := time.Now()
	nowNS := now.UnixNano()
	c.em.handoff = nowNS
	edges := r.spouts[c.spoutIdx].outEdges
	r.roots.startN(c.shard, int64(len(vs)))
	for i, v := range vs {
		entry := r.timeouts.watch(now)
		tree := newRootFor(r, now, entry)
		tree.batch = b
		if traces[i] != 0 {
			tree.trace = traces[i]
			tree.arrivedNS = nowNS
		}
		c.em.beginRoot(tree)
		c.em.emit(edges, v)
		c.em.sealRoot(now)
	}
	c.em.pushDests()
}

// Done exposes the stop signal.
func (c *spoutCtx) Done() <-chan struct{} { return c.run.done }

// Paused reports whether a rebalance is in progress.
func (c *spoutCtx) Paused() bool { return c.run.paused.Load() }

// Instance reports the spout instance index.
func (c *spoutCtx) Instance() int { return c.instance }

// Allocation reports the current executor count per bolt.
func (r *Run) Allocation() map[string]int {
	out := make(map[string]int, len(r.bolts))
	for _, br := range r.bolts {
		out[br.spec.name] = len(br.route.Load().execs)
	}
	return out
}

// QueueLengths reports the total queued tuples per bolt.
func (r *Run) QueueLengths() map[string]int {
	out := make(map[string]int, len(r.bolts))
	for _, br := range r.bolts {
		total := 0
		for _, ex := range br.route.Load().execs {
			total += ex.q.len()
		}
		out[br.spec.name] = total
	}
	return out
}

// Errors reports the bolt's processing error count and last error.
func (r *Run) Errors(bolt string) (int64, error) {
	for _, br := range r.bolts {
		if br.spec.name == bolt {
			var last error
			if p := br.lastErr.Load(); p != nil {
				last = *p
			}
			return br.errCount.Load(), last
		}
	}
	return 0, fmt.Errorf("engine: unknown bolt %q", bolt)
}

// LoadSkew reports, for one bolt, the ratio of the busiest executor's
// cumulative served-tuple count to the mean across its executors (1.0 =
// perfectly balanced). The DRS model *assumes* per-operator load balance
// (§III-A); this diagnostic lets an operator check the assumption — e.g. a
// fields grouping with a hot key will show skew that the M/M/k model
// cannot see. Counts are cumulative since each executor started, so call
// it between rebalances.
func (r *Run) LoadSkew(bolt string) (float64, error) {
	for _, br := range r.bolts {
		if br.spec.name != bolt {
			continue
		}
		rt := br.route.Load()
		total, maxServed := int64(0), int64(0)
		for _, ex := range rt.execs {
			served := ex.probe.ServedTotal()
			total += served
			if served > maxServed {
				maxServed = served
			}
		}
		if total == 0 {
			return 1, nil
		}
		mean := float64(total) / float64(len(rt.execs))
		return float64(maxServed) / mean, nil
	}
	return 0, fmt.Errorf("engine: unknown bolt %q", bolt)
}

// LateTuples reports external tuples whose processing tree missed the
// configured TupleTimeout (0 when disabled).
func (r *Run) LateTuples() int64 {
	return r.timeouts.lateCount(time.Now())
}

// SpoutErrors reports how many spout instances failed and the last failure.
func (r *Run) SpoutErrors() (int64, error) {
	var last error
	if p := r.spoutLastErr.Load(); p != nil {
		last = *p
	}
	return r.spoutErrCount.Load(), last
}

// Completions reports the cumulative completed-tuple count and mean total
// sojourn time.
func (r *Run) Completions() (count int64, meanSojourn time.Duration) {
	_, n, nanos := r.roots.totals()
	if n == 0 {
		return 0, 0
	}
	return n, time.Duration(nanos / n)
}

// BoltNames returns the bolt names in declaration order — the operator
// order of DrainInterval reports and of model allocation vectors.
func (r *Run) BoltNames() []string { return r.topo.BoltNames() }

// DrainInterval collects one measurement interval in measurer form:
// per-bolt probe aggregates (operator level), external arrival count and
// completed sojourns since the previous drain. Concurrent drains are
// serialized; each interval's counters are reported exactly once.
func (r *Run) DrainInterval() metrics.IntervalReport {
	r.drainMu.Lock()
	defer r.drainMu.Unlock()
	now := time.Now()
	started, completed, nanos := r.roots.totals()
	rep := metrics.IntervalReport{
		Duration:         now.Sub(r.lastDrain),
		ExternalArrivals: started - r.lastStarted,
		Ops:              make([]metrics.OpInterval, len(r.bolts)),
		SojournCount:     completed - r.lastCompleted,
		SojournTotal:     time.Duration(nanos - r.lastNanos),
	}
	r.lastDrain = now
	r.lastStarted, r.lastCompleted, r.lastNanos = started, completed, nanos
	for i, br := range r.bolts {
		var agg metrics.ProbeCounters
		for _, ex := range br.route.Load().execs {
			agg.Merge(ex.probe.Drain())
		}
		rep.Ops[i] = metrics.OpInterval{
			Arrivals: agg.Arrivals, Served: agg.Served,
			Sampled: agg.Sampled, BusyTime: agg.BusyTime,
			BusySqSeconds: agg.BusySqSeconds,
		}
		br.cumArrivals.Add(agg.Arrivals)
		br.cumServed.Add(agg.Served)
	}
	return rep
}

// RootTotals reports the root log's cumulative external-tuple counters:
// trees started, trees completed, and the summed sojourn nanoseconds of
// the completed ones — the raw series behind /metrics.
func (r *Run) RootTotals() (started, completed, sojournNanos int64) {
	return r.roots.totals()
}

// BoltTotals reports one bolt's cumulative arrived/served tuple counts as
// folded by DrainInterval. Unlike the probes (which reset whenever a
// rebalance installs fresh executors) these are monotonic for the life of
// the run; they advance at DrainInterval granularity.
func (r *Run) BoltTotals(bolt string) (arrivals, served int64, err error) {
	br := r.boltByName(bolt)
	if br == nil {
		return 0, 0, fmt.Errorf("engine: unknown bolt %q", bolt)
	}
	return br.cumArrivals.Load(), br.cumServed.Load(), nil
}

// Rebalance changes executor counts (bolt name -> count). It pauses
// ingestion, waits for in-flight tuples to drain, swaps executor sets for
// the bolts whose counts change, and resumes — the paper's improved
// JVM-reusing rebalance, which keeps task state in place.
func (r *Run) Rebalance(alloc map[string]int) error {
	if r.stopped.Load() {
		return ErrStopped
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Validate first: reject before disturbing anything.
	changed := make(map[int]int)
	for i, br := range r.bolts {
		n, ok := alloc[br.spec.name]
		if !ok {
			continue // unchanged bolts may be omitted
		}
		if n < 1 || n > br.spec.tasks {
			return fmt.Errorf("engine: bolt %q: %d executors out of [1, %d tasks]", br.spec.name, n, br.spec.tasks)
		}
		if n != len(br.route.Load().execs) {
			changed[i] = n
		}
	}
	if len(changed) == 0 {
		return nil
	}
	r.paused.Store(true)
	defer r.paused.Store(false)
	if !r.quiesce(r.cfg.QuiesceTimeout) {
		return ErrQuiesceTimeout
	}
	moves := make(map[string]int, len(changed))
	for i, n := range changed {
		br := r.bolts[i]
		old := br.route.Load()
		moves[br.spec.name] = r.installExecutors(br, n)
		for _, ex := range old.execs {
			ex.q.close()
		}
		for _, ex := range old.execs {
			<-ex.done
		}
	}
	r.lastMoves = moves
	return nil
}

// LastRebalanceMoves reports, for the most recent successful Rebalance, how
// many tasks of each changed bolt migrated to a different executor — the
// state-movement cost the migration-aware planner minimizes.
func (r *Run) LastRebalanceMoves() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.lastMoves))
	for k, v := range r.lastMoves {
		out[k] = v
	}
	return out
}

// quiesce waits until no external tuple trees are pending. The caller
// holds r.mu, so any remote-binding heal requested meanwhile (a worker
// dying mid-quiesce) cannot acquire it — quiesce drains the heal queue
// itself each iteration, or the dead binding's backlog would pin its
// trees for the whole timeout and the drain could never finish.
func (r *Run) quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for r.roots.pending() > 0 {
		r.drainHealsLocked()
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Stop shuts the topology down: spouts first, then a drain, then the
// executors. Safe to call once; later calls return ErrStopped.
func (r *Run) Stop() error {
	if !r.stopped.CompareAndSwap(false, true) {
		return ErrStopped
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	close(r.done)
	r.wg.Wait() // spouts gone; no new roots
	drained := r.quiesce(r.cfg.QuiesceTimeout)
	r.shutdownExecutors()
	r.execWG.Wait()
	if !drained {
		return fmt.Errorf("engine: stopped with tuples in flight: %w", ErrQuiesceTimeout)
	}
	return nil
}

func (r *Run) shutdownExecutors() {
	for _, br := range r.bolts {
		if rt := br.route.Load(); rt != nil {
			for _, ex := range rt.execs {
				ex.q.close()
				// A remote drain loop may be parked on its in-flight
				// window behind a wedged transport; release it so Stop
				// cannot hang (quiesce already decided the drain outcome).
				ex.killRemote()
			}
		}
	}
}
