package engine

import (
	"errors"
	"fmt"
)

// Spout is a data source. Run must emit tuples until ctx is done (the emit
// callback is safe to call from the Run goroutine only) and then return.
type Spout interface {
	Run(ctx SpoutContext) error
}

// SpoutContext is passed to a running spout instance. Its methods must be
// called from the spout's Run goroutine only (each instance owns an
// unsynchronized emitter; see the Spout doc).
type SpoutContext interface {
	// Emit injects one external tuple into the topology.
	Emit(v Values)
	// EmitBatch injects a batch of external tuples — each becomes its own
	// processing tree, but the whole batch shares one timestamp and one
	// enqueue per destination executor (source micro-batching; use it when
	// the source naturally yields tuples in chunks).
	EmitBatch(vs []Values)
	// EmitBatchAcked is EmitBatch plus a completion hook: done fires
	// exactly once, after every tuple in the batch has been fully
	// processed (its ack tree completed). It is invoked on an engine
	// goroutine and must be fast and non-blocking — the durable ingest
	// path uses it to advance the WAL ack watermark. An empty batch
	// fires done immediately.
	EmitBatchAcked(vs []Values, done func())
	// Done is closed when the spout must stop.
	Done() <-chan struct{}
	// Paused reports whether ingestion is currently suspended (during a
	// rebalance); spouts should idle briefly instead of emitting.
	Paused() bool
	// Instance is this spout instance's index (0-based).
	Instance() int
}

// Bolt processes tuples. One instance exists per task; the engine
// guarantees a task's Process calls are sequential, so instance state needs
// no locking. Emit routes downstream according to the topology's groupings
// and must only be called from within Process.
type Bolt interface {
	Process(t Tuple, emit Emit) error
}

// Emit sends a tuple payload downstream on the default stream. Call To for
// a named stream (Storm-style multi-stream bolts, e.g. the FPD detector's
// loop notifications vs. its reporter output).
type Emit func(v Values)

// To returns an emitter bound to the named stream. It is attached to the
// Emit closure by the runtime via emitRegistry; see Run.emitFrom.
func (e Emit) To(stream string) func(v Values) {
	return func(v Values) { e(append(Values{streamTag(stream)}, v...)) }
}

// streamTag marks a payload as destined for a named stream. It is stripped
// before delivery, so bolts never observe it.
type streamTag string

// BoltFunc adapts a function to the Bolt interface for stateless bolts.
type BoltFunc func(t Tuple, emit Emit) error

// Process calls the function.
func (f BoltFunc) Process(t Tuple, emit Emit) error { return f(t, emit) }

// BoltFactory creates the per-task bolt instance. task is the task index
// within the bolt (0-based), so stateful bolts know their partition.
type BoltFactory func(task int) Bolt

// GroupingKind selects how an edge routes tuples to the target's tasks.
type GroupingKind int

const (
	// GroupShuffle spreads tuples over tasks round-robin — Storm's shuffle
	// grouping, the load-balanced default.
	GroupShuffle GroupingKind = iota + 1
	// GroupFields routes by hash of a key, so equal keys always reach the
	// same task (stateful partitioning).
	GroupFields
	// GroupBroadcast sends a copy to every task — Storm's "all" grouping,
	// which the FPD detector loop uses for state-change notifications.
	GroupBroadcast
)

// KeyFunc extracts the partitioning key for fields grouping.
type KeyFunc func(v Values) uint64

// edgeSpec is one declared connection.
type edgeSpec struct {
	fromSpout bool
	from      int // spout or bolt index
	to        int // bolt index
	kind      GroupingKind
	key       KeyFunc
	stream    string // "" is the default stream
}

// spoutSpec declares a source.
type spoutSpec struct {
	name      string
	factory   func(instance int) Spout
	instances int
}

// boltSpec declares an operator.
type boltSpec struct {
	name    string
	factory BoltFactory
	tasks   int
}

// TopologyBuilder accumulates a topology declaration.
type TopologyBuilder struct {
	spouts []spoutSpec
	bolts  []boltSpec
	edges  []edgeSpec
	index  map[string]nodeRef
	errs   []error
}

type nodeRef struct {
	spout bool
	idx   int
}

// NewTopology returns an empty builder.
func NewTopology() *TopologyBuilder {
	return &TopologyBuilder{index: make(map[string]nodeRef)}
}

// Spout declares a source with the given number of instances.
func (b *TopologyBuilder) Spout(name string, instances int, factory func(instance int) Spout) *TopologyBuilder {
	if err := b.checkName(name); err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	if instances < 1 {
		b.errs = append(b.errs, fmt.Errorf("engine: spout %q: instances %d < 1", name, instances))
		return b
	}
	if factory == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: spout %q: nil factory", name))
		return b
	}
	b.index[name] = nodeRef{spout: true, idx: len(b.spouts)}
	b.spouts = append(b.spouts, spoutSpec{name: name, factory: factory, instances: instances})
	return b
}

// Bolt declares an operator with the given fixed task count. Tasks bound
// the maximum executor parallelism (Storm's design: tasks are fixed while
// the topology runs; executors are re-assigned task subsets on rebalance).
func (b *TopologyBuilder) Bolt(name string, tasks int, factory BoltFactory) *TopologyBuilder {
	if err := b.checkName(name); err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	if tasks < 1 {
		b.errs = append(b.errs, fmt.Errorf("engine: bolt %q: tasks %d < 1", name, tasks))
		return b
	}
	if factory == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: bolt %q: nil factory", name))
		return b
	}
	b.index[name] = nodeRef{idx: len(b.bolts)}
	b.bolts = append(b.bolts, boltSpec{name: name, factory: factory, tasks: tasks})
	return b
}

func (b *TopologyBuilder) checkName(name string) error {
	if name == "" {
		return errors.New("engine: empty component name")
	}
	if _, dup := b.index[name]; dup {
		return fmt.Errorf("engine: duplicate component %q", name)
	}
	return nil
}

// Shuffle connects from -> to with shuffle grouping on the default stream.
func (b *TopologyBuilder) Shuffle(from, to string) *TopologyBuilder {
	return b.connect(from, to, "", GroupShuffle, nil)
}

// ShuffleOn is Shuffle for a named output stream of from.
func (b *TopologyBuilder) ShuffleOn(stream, from, to string) *TopologyBuilder {
	return b.connect(from, to, stream, GroupShuffle, nil)
}

// Fields connects from -> to routing by key on the default stream.
func (b *TopologyBuilder) Fields(from, to string, key KeyFunc) *TopologyBuilder {
	if key == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: fields edge %s->%s: nil key func", from, to))
		return b
	}
	return b.connect(from, to, "", GroupFields, key)
}

// FieldsOn is Fields for a named output stream of from.
func (b *TopologyBuilder) FieldsOn(stream, from, to string, key KeyFunc) *TopologyBuilder {
	if key == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: fields edge %s->%s: nil key func", from, to))
		return b
	}
	return b.connect(from, to, stream, GroupFields, key)
}

// Broadcast connects from -> to delivering a copy to every task of to, on
// the default stream.
func (b *TopologyBuilder) Broadcast(from, to string) *TopologyBuilder {
	return b.connect(from, to, "", GroupBroadcast, nil)
}

// BroadcastOn is Broadcast for a named output stream of from.
func (b *TopologyBuilder) BroadcastOn(stream, from, to string) *TopologyBuilder {
	return b.connect(from, to, stream, GroupBroadcast, nil)
}

func (b *TopologyBuilder) connect(from, to, stream string, kind GroupingKind, key KeyFunc) *TopologyBuilder {
	src, ok := b.index[from]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("engine: edge %s->%s: unknown source", from, to))
		return b
	}
	dst, ok := b.index[to]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("engine: edge %s->%s: unknown target", from, to))
		return b
	}
	if dst.spout {
		b.errs = append(b.errs, fmt.Errorf("engine: edge %s->%s: spouts cannot receive", from, to))
		return b
	}
	if src.spout && stream != "" {
		b.errs = append(b.errs, fmt.Errorf("engine: edge %s->%s: spouts emit on the default stream only", from, to))
		return b
	}
	b.edges = append(b.edges, edgeSpec{
		fromSpout: src.spout, from: src.idx, to: dst.idx, kind: kind, key: key, stream: stream,
	})
	return b
}

// Topology is a validated, immutable declaration ready to start.
type Topology struct {
	spouts []spoutSpec
	bolts  []boltSpec
	edges  []edgeSpec
}

// Build validates the declaration.
func (b *TopologyBuilder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if len(b.spouts) == 0 {
		return nil, errors.New("engine: topology needs at least one spout")
	}
	if len(b.bolts) == 0 {
		return nil, errors.New("engine: topology needs at least one bolt")
	}
	reachable := make([]bool, len(b.bolts))
	for _, e := range b.edges {
		if e.fromSpout {
			reachable[e.to] = true
		}
	}
	// Propagate reachability through bolt->bolt edges to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, e := range b.edges {
			if !e.fromSpout && reachable[e.from] && !reachable[e.to] {
				reachable[e.to] = true
				changed = true
			}
		}
	}
	for i, r := range reachable {
		if !r {
			return nil, fmt.Errorf("engine: bolt %q receives no input", b.bolts[i].name)
		}
	}
	return &Topology{
		spouts: append([]spoutSpec(nil), b.spouts...),
		bolts:  append([]boltSpec(nil), b.bolts...),
		edges:  append([]edgeSpec(nil), b.edges...),
	}, nil
}

// BoltNames returns the bolt names in declaration order — the operator
// order used in measurer reports and allocations.
func (t *Topology) BoltNames() []string {
	names := make([]string, len(t.bolts))
	for i, b := range t.bolts {
		names[i] = b.name
	}
	return names
}
