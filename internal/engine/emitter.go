package engine

import (
	"sync/atomic"
	"time"
)

// popBatchSize bounds how many queued tuples an executor moves out of its
// input queue per lock round.
const popBatchSize = 256

// destBatch accumulates the tuples one emit scope routed to one executor.
type destBatch struct {
	ex    *executor
	to    int // destination bolt index, for crash re-routing
	items []queueItem
}

// emitterSeq staggers the shuffle cursors of successive emitters so they do
// not all start at task 0.
var emitterSeq atomic.Uint64

// emitter is the goroutine-local fan-out buffer of one producer (an
// executor or a spout instance). Within one emit scope — a bolt's Process
// call or a spout's Emit — every emitted child is routed immediately but
// enqueued lazily: flush groups the children by destination executor and
// delivers each group with a single batched enqueue, so a fan-out of N
// costs one lock round per destination executor instead of N.
//
// The emitter also owns a private shuffle round-robin cursor per
// destination bolt, so shuffle routing never touches shared state.
type emitter struct {
	r        *Run
	tree     *ackTree // tree of the tuple currently being processed
	handoff  int64    // wall stamp copied onto buffered children (tracing)
	children int      // tuples buffered across dests
	rootMark int      // children count when the current root scope opened
	ndests   int      // live prefix of dests
	dests    []destBatch
	cursors  []uint64 // per destination bolt shuffle cursor
}

func newEmitter(r *Run) *emitter {
	em := &emitter{r: r, cursors: make([]uint64, len(r.bolts))}
	seed := emitterSeq.Add(1)
	for i := range em.cursors {
		em.cursors[i] = seed
	}
	return em
}

// begin opens an emit scope for one tuple's processing.
func (em *emitter) begin(tree *ackTree) { em.tree = tree }

// emit routes one payload along the given edges whose stream matches.
// A leading streamTag (from Emit.To) selects the stream and is stripped
// before delivery. Children are buffered until flush.
func (em *emitter) emit(edges []int, v Values) {
	if em.tree == nil {
		return
	}
	r := em.r
	stream := ""
	if len(v) > 0 {
		if tag, ok := v[0].(streamTag); ok {
			stream = string(tag)
			v = v[1:]
		}
	}
	for _, ei := range edges {
		e := &r.topo.edges[ei]
		if e.stream != stream {
			continue
		}
		br := r.bolts[e.to]
		rt := br.route.Load()
		switch e.kind {
		case GroupShuffle:
			c := em.cursors[e.to]
			em.cursors[e.to]++
			em.add(e.to, rt, int(c%uint64(br.spec.tasks)), v)
		case GroupFields:
			em.add(e.to, rt, int(e.key(v)%uint64(br.spec.tasks)), v)
		case GroupBroadcast:
			for task := 0; task < br.spec.tasks; task++ {
				em.add(e.to, rt, task, v)
			}
		}
	}
}

// add buffers one child for the executor owning task in rt. The handoff
// stamp is copied unconditionally (one store) but only meaningful when
// the tree is traced: root scopes set it to the batch's arrival stamp
// up front, and a traced bolt hop overwrites its children's stamps with
// the service-end time via stampHandoffs before flushing.
func (em *emitter) add(to int, rt *routeTable, task int, v Values) {
	ex := rt.execs[rt.assign[task]]
	it := queueItem{task: task, tup: Tuple{Values: v, tree: em.tree, handoff: em.handoff}}
	for i := 0; i < em.ndests; i++ {
		if em.dests[i].ex == ex {
			em.dests[i].items = append(em.dests[i].items, it)
			em.children++
			return
		}
	}
	if em.ndests == len(em.dests) {
		em.dests = append(em.dests, destBatch{})
	}
	d := &em.dests[em.ndests]
	em.ndests++
	d.ex = ex
	d.to = to
	d.items = append(d.items[:0], it)
	em.children++
}

// stampHandoffs overwrites the handoff stamp of every buffered child
// with ns — a traced bolt hop's service end, read after Process returned
// but before the children are enqueued, so each child's queue-wait span
// starts exactly at its parent's service end. Only called on traced
// hops, whose emit scope flushes per tuple, so the buffered children are
// exactly the current tuple's.
func (em *emitter) stampHandoffs(ns int64) {
	for i := 0; i < em.ndests; i++ {
		items := em.dests[i].items
		for j := range items {
			items[j].tup.handoff = ns
		}
	}
}

// flush closes the emit scope of a processed tuple: it registers all
// buffered children on the processing tree (before any enqueue, so a
// partial delivery can never complete the tree early), then hands each
// destination executor its batch in one enqueue.
func (em *emitter) flush() {
	if em.children > 0 {
		em.tree.fork(em.children)
		em.pushDests()
	}
	em.tree = nil
}

// beginRoot opens the emit scope of a fresh root whose pending count will
// be installed by sealRoot. Several root scopes may accumulate into the
// same destination batches before one pushDests delivers them all
// (EmitBatch's source micro-batching).
func (em *emitter) beginRoot(tree *ackTree) {
	em.tree = tree
	em.rootMark = em.children
}

// sealRoot closes a root scope: the tree's pending count is set to the
// scope's child count directly — none of its children are enqueued yet, so
// no ack can race — skipping the root's own fork/ack round trip. A
// childless root (no subscribers) completes on the spot.
func (em *emitter) sealRoot(now time.Time) {
	tree := em.tree
	em.tree = nil
	n := em.children - em.rootMark
	if n == 0 {
		tree.complete(now)
		return
	}
	tree.pending.Store(int64(n))
}

// pushDests delivers every buffered destination batch with one enqueue
// each. A closed destination queue means either shutdown — the children
// are resolved on the spot, as an immediate delivery would have been —
// or a crashed executor, in which case the batch is re-routed through the
// bolt's refreshed route table so no tuple is lost to the crash. Items
// carry their own tree reference, so batches may mix several roots'
// children.
func (em *emitter) pushDests() {
	for i := 0; i < em.ndests; i++ {
		d := &em.dests[i]
		d.ex.probe.TuplesArrived(int64(len(d.items)))
		if !d.ex.q.pushBatch(d.items) {
			em.redeliver(d)
		}
		clear(d.items) // release payload references; keep capacity
		d.items = d.items[:0]
		d.ex = nil
	}
	em.children = 0
	em.ndests = 0
}

// redeliver handles a batch refused by a closed queue. During shutdown the
// tuples are not coming back: resolve their trees (lazily stamped — the
// drop path is rare and only a completing ack reads a clock). Otherwise
// the destination executor crashed between this emitter's route lookup and
// its enqueue, so each item re-routes through the bolt's *current* route
// table — FailExecutor installs the replacement before it closes the
// victim's queue, so a reload observes the successor almost immediately.
func (em *emitter) redeliver(d *destBatch) {
	r := em.r
	br := r.bolts[d.to]
	for _, it := range d.items {
		if r.stopped.Load() || !r.redeliverItem(br, it) {
			it.tup.tree.ackLazy() // shutdown: the tree must still resolve
		}
	}
}
