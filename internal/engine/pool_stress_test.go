package engine

import (
	"testing"
	"time"
)

// TestPooledTreesNoLostOrDoubleCountedSojourns stress-tests the pooled
// ackTree/timeoutEntry recycling under concurrent fan-out: many spouts
// emit concurrently through a fan-out stage while trees are completed and
// recycled by several executors. If a recycled tree were ever completed
// twice, completed would overrun started; if a completion were lost, the
// run could never drain. The root log must account for exactly one
// completion per emitted root.
func TestPooledTreesNoLostOrDoubleCountedSojourns(t *testing.T) {
	const (
		spouts  = 4
		perSpot = 2000
		total   = spouts * perSpot
	)
	topo, err := NewTopology().
		Spout("src", spouts, func(int) Spout { return &burstSpout{n: perSpot} }).
		Bolt("fan", 8, func(int) Bolt {
			return BoltFunc(func(tp Tuple, emit Emit) error {
				for j := 0; j < 3; j++ {
					emit(Values{tp.Values[0], j})
				}
				return nil
			})
		}).
		Bolt("mid", 8, func(int) Bolt {
			return BoltFunc(func(tp Tuple, emit Emit) error {
				emit(tp.Values)
				return nil
			})
		}).
		Bolt("sink", 8, func(int) Bolt {
			return BoltFunc(func(Tuple, Emit) error { return nil })
		}).
		Shuffle("src", "fan").
		Shuffle("fan", "mid").
		Shuffle("mid", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// TupleTimeout exercises the pooled timeoutEntry path too; generous
	// enough that nothing should actually be late.
	run, err := topo.Start(RunConfig{
		Alloc:        map[string]int{"fan": 4, "mid": 4, "sink": 4},
		TupleTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = run.Stop() })

	waitCompleted(t, run, total)

	started, completed, nanos := run.roots.totals()
	if started != total {
		t.Errorf("started roots = %d, want %d", started, total)
	}
	if completed != total {
		t.Errorf("completed roots = %d, want %d (lost or double-counted trees)", completed, total)
	}
	if nanos <= 0 {
		t.Errorf("total sojourn = %d, want > 0", nanos)
	}
	if pending := run.roots.pending(); pending != 0 {
		t.Errorf("pending roots after drain = %d, want 0", pending)
	}
	count, mean := run.Completions()
	if count != total {
		t.Errorf("Completions count = %d, want %d", count, total)
	}
	if mean <= 0 {
		t.Errorf("mean sojourn = %v, want > 0", mean)
	}
	// Sanity on the per-operator accounting that rides the same path: the
	// fan stage must have served exactly the external tuples, the mid and
	// sink stages exactly 3x that.
	rep := run.DrainInterval()
	if rep.ExternalArrivals != total {
		t.Errorf("external arrivals = %d, want %d", rep.ExternalArrivals, total)
	}
	if got := rep.Ops[0].Served; got != total {
		t.Errorf("fan served %d, want %d", got, total)
	}
	for op := 1; op <= 2; op++ {
		if got := rep.Ops[op].Served; got != 3*total {
			t.Errorf("op %d served %d, want %d", op, got, 3*total)
		}
	}
	if rep.SojournCount != total {
		t.Errorf("interval sojourn count = %d, want %d", rep.SojournCount, total)
	}
	if late := run.LateTuples(); late != 0 {
		t.Errorf("late tuples = %d, want 0", late)
	}
}

// TestSampledServiceTimeCoversOneTuple pins the Nm-stride sampling
// semantics: with SampleEveryNm > 1, a recorded sample must cover exactly
// the sampled tuple's own service, not the whole stride since the previous
// sample (which would inflate BusyTime — and deflate the measured service
// rate — by a factor of Nm).
func TestSampledServiceTimeCoversOneTuple(t *testing.T) {
	const (
		n   = 40
		per = 5 * time.Millisecond
		nm  = 5
	)
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("slow", 2, func(int) Bolt { return slowBolt{d: per} }).
		Shuffle("src", "slow").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{
		Alloc:         map[string]int{"slow": 1},
		SampleEveryNm: nm,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = run.Stop() })
	waitCompleted(t, run, n)
	rep := run.DrainInterval()
	op := rep.Ops[0]
	if op.Served != n {
		t.Fatalf("served = %d, want %d", op.Served, n)
	}
	if op.Sampled == 0 {
		t.Fatal("no service samples with Nm stride")
	}
	if want := int64(n / nm); op.Sampled != want {
		t.Errorf("sampled = %d, want %d (stride %d over %d tuples)", op.Sampled, want, nm, n)
	}
	avg := op.BusyTime / time.Duration(op.Sampled)
	if avg < per {
		t.Errorf("mean sampled service %v below the %v sleep floor", avg, per)
	}
	if avg > 3*per {
		t.Errorf("mean sampled service %v looks like a whole %d-tuple stride, want ~%v", avg, nm, per)
	}
}

// TestQueuePopAllAndShrink covers the batch consumer path directly: popAll
// hands the whole ring over, and a queue that ballooned during a burst
// releases its capacity once the burst is over.
func TestQueuePopAllAndShrink(t *testing.T) {
	q := newQueue()
	const burst = 3 * shrinkCap
	for i := 0; i < burst; i++ {
		q.push(queueItem{task: i})
	}
	ring, head, n, ok := q.popAll(nil)
	if !ok || n != burst {
		t.Fatalf("popAll = (n=%d, ok=%v), want %d items", n, ok, burst)
	}
	mask := len(ring) - 1
	for i := 0; i < n; i++ {
		it := &ring[(head+i)&mask]
		if it.task != i {
			t.Fatalf("item %d has task %d, want %d (FIFO violated)", i, it.task, i)
		}
		*it = queueItem{}
	}
	// A small trickle afterwards must not keep the burst-sized ring: hand
	// the big ring back as spare, drain a few small batches, and watch the
	// capacity fall back.
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ {
			q.push(queueItem{task: i})
		}
		ring2, head2, n2, ok2 := q.popAll(ring)
		if !ok2 || n2 != 8 {
			t.Fatalf("round %d: popAll = (n=%d, ok=%v)", round, n2, ok2)
		}
		m2 := len(ring2) - 1
		for i := 0; i < n2; i++ {
			ring2[(head2+i)&m2] = queueItem{}
		}
		ring = ring2
	}
	if cap(ring) > shrinkCap {
		t.Errorf("ring capacity %d still burst-sized after trickle rounds (want <= %d)", cap(ring), shrinkCap)
	}
}
