package engine

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeRemote is an in-process RemoteExecutor: it "hosts" a stateless bolt
// that emits fanout children per input tuple, with injectable transport
// failures on either leg (the send and the result).
type fakeRemote struct {
	fanout int
	// sendErrAfter, when >= 0, makes ProcessBatch return an error once
	// that many batches have been accepted (the send leg dies).
	sendErrAfter int
	// resultErrAfter, when >= 0, makes the done callback report an error
	// after that many successful batches (the result frame is lost).
	resultErrAfter int

	mu      sync.Mutex
	batches int
	items   int
}

func newFakeRemote(fanout int) *fakeRemote {
	return &fakeRemote{fanout: fanout, sendErrAfter: -1, resultErrAfter: -1}
}

func (f *fakeRemote) stats() (batches, items int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.batches, f.items
}

func (f *fakeRemote) ProcessBatch(bolt string, items []RemoteItem, done func(RemoteResult, error)) error {
	f.mu.Lock()
	if f.sendErrAfter >= 0 && f.batches >= f.sendErrAfter {
		f.mu.Unlock()
		return errors.New("fakeRemote: connection down")
	}
	f.batches++
	n := f.batches
	f.items += len(items)
	f.mu.Unlock()
	if f.resultErrAfter >= 0 && n > f.resultErrAfter {
		done(RemoteResult{}, errors.New("fakeRemote: result lost"))
		return nil
	}
	emitted := make([][]Values, len(items))
	for i, it := range items {
		for c := 0; c < f.fanout; c++ {
			emitted[i] = append(emitted[i], Values{it.Values[0], c})
		}
	}
	done(RemoteResult{Emitted: emitted, Served: int64(len(items))}, nil)
	return nil
}

// trickleSpout emits n tuples with a short pause every stride, forcing the
// drain loops through many popAll rounds (and so many remote batches).
type trickleSpout struct {
	n, stride int
	pause     time.Duration
}

func (s *trickleSpout) Run(ctx SpoutContext) error {
	for i := 0; i < s.n; i++ {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		if s.stride > 0 && i%s.stride == 0 {
			time.Sleep(s.pause)
		}
		ctx.Emit(Values{i})
	}
	<-ctx.Done()
	return nil
}

func remoteTestTopo(t *testing.T, n int) (*Topology, *collectBolt) {
	t.Helper()
	collector, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &trickleSpout{n: n, stride: 50, pause: time.Millisecond} }).
		Bolt("fan", 4, func(int) Bolt {
			return BoltFunc(func(tu Tuple, emit Emit) error {
				for j := 0; j < 3; j++ {
					emit(Values{tu.Values[0], j})
				}
				return nil
			})
		}).
		Bolt("sink", 8, factory).
		Shuffle("src", "fan").
		Shuffle("fan", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, collector
}

// TestBindExecutorRemote routes half of a mid-topology bolt through a
// remote destination and checks the books are indistinguishable from the
// all-local run: every root completes, the full fan-out reaches the sink,
// and the remote carried real traffic.
func TestBindExecutorRemote(t *testing.T) {
	const n = 500
	topo, collector := remoteTestTopo(t, n)
	run := startTopo(t, topo, map[string]int{"fan": 2, "sink": 4})
	remote := newFakeRemote(3)
	if err := run.BindExecutor("fan", 0, remote); err != nil {
		t.Fatal(err)
	}
	if got, _ := run.RemoteBound("fan"); got != 1 {
		t.Fatalf("RemoteBound = %d, want 1", got)
	}
	waitCompleted(t, run, n)
	if got := collector.count(); got != 3*n {
		t.Errorf("sink saw %d tuples, want %d", got, 3*n)
	}
	if _, items := remote.stats(); items == 0 {
		t.Error("remote executor carried no traffic")
	}
	// Rebinding to the same transport is a no-op; unbinding drains back to
	// a local goroutine and the books still balance.
	if err := run.BindExecutor("fan", 0, remote); err != nil {
		t.Fatal(err)
	}
	if err := run.BindExecutor("fan", 0, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := run.RemoteBound("fan"); got != 0 {
		t.Fatalf("RemoteBound after unbind = %d, want 0", got)
	}
}

// TestBindExecutorValidation exercises the error surface.
func TestBindExecutorValidation(t *testing.T) {
	topo, _ := remoteTestTopo(t, 1)
	run := startTopo(t, topo, map[string]int{"fan": 2, "sink": 2})
	if err := run.BindExecutor("nope", 0, newFakeRemote(0)); err == nil {
		t.Error("unknown bolt: want error")
	}
	if err := run.BindExecutor("fan", 7, newFakeRemote(0)); err == nil {
		t.Error("executor out of range: want error")
	}
	if _, err := run.RemoteBound("nope"); err == nil {
		t.Error("RemoteBound unknown bolt: want error")
	}
	waitCompleted(t, run, 1)
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := run.BindExecutor("fan", 0, newFakeRemote(0)); !errors.Is(err, ErrStopped) {
		t.Errorf("BindExecutor after Stop = %v, want ErrStopped", err)
	}
}

// TestRemoteSendFailureSelfHeals kills the transport's send leg while a
// burst is in flight: the binding must self-heal to a local replacement and
// replay the stranded backlog, losing nothing.
func TestRemoteSendFailureSelfHeals(t *testing.T) {
	const n = 500
	topo, collector := remoteTestTopo(t, n)
	run := startTopo(t, topo, map[string]int{"fan": 2, "sink": 4})
	remote := newFakeRemote(3)
	remote.sendErrAfter = 1 // first batch lands, then the conn dies
	if err := run.BindExecutor("fan", 0, remote); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, run, n)
	if got := collector.count(); got != 3*n {
		t.Errorf("sink saw %d tuples, want %d (lost through the transport failure)", got, 3*n)
	}
	waitRemoteUnbound(t, run, "fan")
	if run.ExecutorFailures() == 0 {
		t.Error("transport failure not accounted as an executor failure")
	}
}

// TestRemoteResultLossReplays loses every result frame after the first
// batch: the pinned batches must replay through the route table (the
// at-least-once window) and the run still completes every root.
func TestRemoteResultLossReplays(t *testing.T) {
	const n = 500
	topo, collector := remoteTestTopo(t, n)
	run := startTopo(t, topo, map[string]int{"fan": 2, "sink": 4})
	remote := newFakeRemote(3)
	remote.resultErrAfter = 1
	if err := run.BindExecutor("fan", 0, remote); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, run, n)
	if got := collector.count(); got != 3*n {
		t.Errorf("sink saw %d tuples, want %d", got, 3*n)
	}
	waitRemoteUnbound(t, run, "fan")
}

// waitRemoteUnbound waits for the asynchronous self-heal to land.
func waitRemoteUnbound(t *testing.T, run *Run, bolt string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, _ := run.RemoteBound(bolt); got == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("remote binding never self-healed")
		}
		time.Sleep(time.Millisecond)
	}
}
