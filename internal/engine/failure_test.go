package engine

import (
	"errors"
	"testing"
	"time"
)

// TestFailExecutorReplaysBacklog crashes executors under a deep backlog
// and checks the at-least-once promise: every external tuple's tree still
// completes, the captured backlog is accounted as replayed, and no tuple
// is processed on the dead executor after the crash.
func TestFailExecutorReplaysBacklog(t *testing.T) {
	const n = 1000
	collector, factory := sharedCollector()
	wrapped := func(task int) Bolt {
		inner := factory(task)
		return BoltFunc(func(tu Tuple, emit Emit) error {
			time.Sleep(200 * time.Microsecond)
			return inner.Process(tu, emit)
		})
	}
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("work", 8, wrapped).
		Shuffle("src", "work").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"work": 2})
	time.Sleep(10 * time.Millisecond) // let the burst pile up in the queues
	if _, err := run.FailExecutor("work", 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := run.FailExecutor("work", 1); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, run, n)
	if got := collector.count(); got != n {
		t.Errorf("processed %d tuples, want %d (lost or duplicated through the crashes)", got, n)
	}
	if run.ExecutorFailures() != 2 {
		t.Errorf("ExecutorFailures = %d, want 2", run.ExecutorFailures())
	}
	if run.Replayed() == 0 {
		t.Error("no tuples replayed despite crashing under a deep backlog")
	}
}

// TestFailExecutorUnderFire hammers a mid-topology bolt with crashes while
// upstream emitters are actively routing to it — the emitters' redelivery
// path must land every bounced tuple on the replacement, and every root
// must still complete.
func TestFailExecutorUnderFire(t *testing.T) {
	const n = 400
	collector, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("fan", 4, func(int) Bolt {
			return BoltFunc(func(tu Tuple, emit Emit) error {
				for j := 0; j < 3; j++ {
					emit(Values{tu.Values[0], j})
				}
				return nil
			})
		}).
		Bolt("sink", 8, factory).
		Shuffle("src", "fan").
		Shuffle("fan", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"fan": 2, "sink": 4})
	for i := 0; i < 12; i++ {
		if _, err := run.FailExecutor("sink", i%4); err != nil {
			t.Fatal(err)
		}
	}
	waitCompleted(t, run, n)
	if got := collector.count(); got != 3*n {
		t.Errorf("sink saw %d tuples, want %d", got, 3*n)
	}
	if run.ExecutorFailures() != 12 {
		t.Errorf("ExecutorFailures = %d, want 12", run.ExecutorFailures())
	}
}

// TestFailExecutorRecoveryComposesWithRebalance: a crash followed by a
// rebalance (and the other way round) keeps the topology consistent — the
// replacement executor is a full citizen of the route table.
func TestFailExecutorRecoveryComposesWithRebalance(t *testing.T) {
	const n = 600
	collector, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("work", 8, factory).
		Shuffle("src", "work").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"work": 4})
	if _, err := run.FailExecutor("work", 2); err != nil {
		t.Fatal(err)
	}
	if err := run.Rebalance(map[string]int{"work": 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := run.FailExecutor("work", 1); err != nil {
		t.Fatal(err)
	}
	if err := run.Rebalance(map[string]int{"work": 6}); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, run, n)
	if got := collector.count(); got != n {
		t.Errorf("processed %d tuples, want %d", got, n)
	}
	if got := run.Allocation()["work"]; got != 6 {
		t.Errorf("allocation after the arc = %d, want 6", got)
	}
}

// TestFailExecutorValidation: bad bolt names and indices fail cleanly, and
// a stopped run refuses injections.
func TestFailExecutorValidation(t *testing.T) {
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: 0} }).
		Bolt("work", 4, func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }).
		Shuffle("src", "work").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"work": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.FailExecutor("nope", 0); err == nil {
		t.Error("unknown bolt accepted")
	}
	if _, err := run.FailExecutor("work", 2); err == nil {
		t.Error("out-of-range executor accepted")
	}
	if _, err := run.FailExecutor("work", -1); err == nil {
		t.Error("negative executor accepted")
	}
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := run.FailExecutor("work", 0); !errors.Is(err, ErrStopped) {
		t.Errorf("stopped run: %v, want ErrStopped", err)
	}
}
