// Package engine is the CSP (cloud stream processing) substrate: a small,
// from-scratch, Storm-like operator DSMS. Applications are topologies of
// spouts (sources) and bolts (operators); each bolt is partitioned into a
// fixed number of tasks (the paper's Appendix-C partitioning scheme), and
// tasks are assigned to executors — goroutines with an input queue. Because
// routing targets tasks, not executors, the executor count of a bolt can be
// changed at runtime ("re-balancing") without changing routing and without
// losing task-local state, which is exactly the mechanism DRS relies on.
//
// The engine measures itself with the metrics package probes: arrivals are
// counted at the queue tail, service times per tuple, and every external
// tuple's processing tree is tracked so its total sojourn time is recorded
// on completion — the quantity the paper's measurer feeds to the optimizer.
package engine

import "sync"

// queueItem pairs a tuple with the task that must process it.
type queueItem struct {
	task int
	tup  Tuple
}

// queue is an unbounded MPSC blocking queue. Unbounded matters: with loop
// topologies (FPD's detector notifies itself) a bounded queue lets an
// executor block on emitting to itself — a deadlock the paper's Storm setup
// avoids with large buffers. Memory pressure is the accepted trade, as in
// the paper ("errors when the queue reaches its size limit" is the overload
// failure mode we surface through latency instead).
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []queueItem
	head   int
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one item; returns false if the queue is closed.
func (q *queue) push(it queueItem) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return true
}

// pop blocks until an item is available or the queue is closed and empty.
func (q *queue) pop() (queueItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.head < len(q.items) {
			it := q.items[q.head]
			q.items[q.head] = queueItem{} // release references
			q.head++
			if q.head == len(q.items) {
				q.items = q.items[:0]
				q.head = 0
			}
			return it, true
		}
		if q.closed {
			return queueItem{}, false
		}
		q.cond.Wait()
	}
}

// close wakes all poppers; pending items are still drained by pop.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// len reports the number of queued items.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
