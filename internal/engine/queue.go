// Package engine is the CSP (cloud stream processing) substrate: a small,
// from-scratch, Storm-like operator DSMS. Applications are topologies of
// spouts (sources) and bolts (operators); each bolt is partitioned into a
// fixed number of tasks (the paper's Appendix-C partitioning scheme), and
// tasks are assigned to executors — goroutines with an input queue. Because
// routing targets tasks, not executors, the executor count of a bolt can be
// changed at runtime ("re-balancing") without changing routing and without
// losing task-local state, which is exactly the mechanism DRS relies on.
//
// The engine measures itself with the metrics package probes: arrivals are
// counted at the queue tail, service times per tuple, and every external
// tuple's processing tree is tracked so its total sojourn time is recorded
// on completion — the quantity the paper's measurer feeds to the optimizer.
package engine

import (
	"runtime"
	"sync"
)

// queueItem pairs a tuple with the task that must process it.
type queueItem struct {
	task int
	tup  Tuple
}

// queue shrink policy: a ring above shrinkCap capacity whose burst peak
// since the last empty point used less than a quarter of it is released,
// so a queue that grew during a burst does not pin burst-peak memory for
// the rest of a long run.
const shrinkCap = 1024

// yieldDepth is the cooperative-backpressure mark: a producer that leaves
// a queue deeper than this yields its processor slice so consumers can
// drain. The queue stays unbounded (no deadlock on self-loops — a yield
// always returns), but on saturated schedulers the in-flight window stays
// small enough to be cache-resident instead of growing a full scheduler
// quantum's worth of cold tuples.
const yieldDepth = 512

// queue is an unbounded MPSC blocking queue, batch-aware on both ends:
// producers can push a slice of items under one lock round, and the
// consumer drains up to a buffer's worth per lock round. Storage is a
// power-of-two ring, so steady-state traffic recirculates one buffer
// instead of growing an append-only slice. Unbounded matters: with loop
// topologies (FPD's detector notifies itself) a bounded queue lets an
// executor block on emitting to itself — a deadlock the paper's Storm
// setup avoids with large buffers. Memory pressure is the accepted trade,
// as in the paper ("errors when the queue reaches its size limit" is the
// overload failure mode we surface through latency instead).
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []queueItem // power-of-two ring
	head    int         // index of the oldest item
	n       int         // live item count
	peak    int         // max live count since the queue last went empty
	waiting int         // poppers parked in cond.Wait
	closed  bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// growLocked ensures room for need more items, doubling the ring.
func (q *queue) growLocked(need int) {
	want := q.n + need
	newCap := cap(q.buf)
	if newCap == 0 {
		newCap = 16
	}
	for newCap < want {
		newCap *= 2
	}
	if newCap == cap(q.buf) {
		return
	}
	nb := make([]queueItem, newCap)
	q.copyOutLocked(nb[:q.n])
	q.buf = nb
	q.head = 0
}

// copyOutLocked copies the oldest len(dst) items into dst in FIFO order.
func (q *queue) copyOutLocked(dst []queueItem) {
	first := q.head
	if tail := len(q.buf) - first; tail < len(dst) {
		copy(dst, q.buf[first:])
		copy(dst[tail:], q.buf[:len(dst)-tail])
	} else {
		copy(dst, q.buf[first:first+len(dst)])
	}
}

// push enqueues one item; returns false if the queue is closed.
func (q *queue) push(it queueItem) bool {
	var buf [1]queueItem
	buf[0] = it
	return q.pushBatch(buf[:])
}

// pushBatch enqueues a slice of items under a single lock round; the items
// are copied, so the caller may reuse its buffer immediately. Returns false
// (enqueuing nothing) if the queue is closed.
func (q *queue) pushBatch(its []queueItem) bool {
	if len(its) == 0 {
		return true
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.n+len(its) > cap(q.buf) {
		q.growLocked(len(its))
	}
	mask := cap(q.buf) - 1
	tail := (q.head + q.n) & mask
	if room := cap(q.buf) - tail; room < len(its) {
		copy(q.buf[tail:], its[:room])
		copy(q.buf, its[room:])
	} else {
		copy(q.buf[tail:tail+len(its)], its)
	}
	q.n += len(its)
	if q.n > q.peak {
		q.peak = q.n
	}
	// A parked popper implies the queue was empty, so one signal per
	// empty->non-empty transition suffices: whoever wakes drains to empty
	// before parking again.
	wake := q.n == len(its) && q.waiting > 0
	deep := q.n > yieldDepth
	q.mu.Unlock()
	if wake {
		q.cond.Signal()
	}
	if deep {
		runtime.Gosched()
	}
	return true
}

// popAll blocks until items are available (or the queue is closed and
// empty), then takes the entire ring in O(1): the queue keeps spare as its
// new (empty) ring, and the caller gets the old one to iterate in place —
// no copy happens under the lock. spare must be a cleared full-length ring
// from a previous popAll (or nil). The returned items live at
// ring[(head+i) % len(ring)] for i in [0, n).
func (q *queue) popAll(spare []queueItem) (ring []queueItem, head, n int, ok bool) {
	q.mu.Lock()
	for {
		if q.n > 0 {
			ring, head, n = q.buf, q.head, q.n
			if cap(spare) > shrinkCap && q.peak*4 < cap(spare) {
				spare = nil // shrink: drop an oversized burst-era ring
			}
			q.buf = spare[:cap(spare)]
			q.head = 0
			q.n = 0
			q.peak = 0
			q.mu.Unlock()
			return ring, head, n, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, 0, 0, false
		}
		q.waiting++
		q.cond.Wait()
		q.waiting--
	}
}

// pop blocks until an item is available or the queue is closed and empty.
func (q *queue) pop() (queueItem, bool) {
	var buf [1]queueItem
	out, ok := q.popBatch(buf[:0])
	if !ok {
		return queueItem{}, false
	}
	return out[0], true
}

// popBatch blocks until items are available (or the queue is closed and
// empty), then moves up to cap(buf) of them into buf under one lock round.
// The returned slice aliases buf.
func (q *queue) popBatch(buf []queueItem) ([]queueItem, bool) {
	max := cap(buf)
	if max == 0 {
		max = 1
		buf = make([]queueItem, 0, 1)
	}
	q.mu.Lock()
	for {
		if q.n > 0 {
			take := q.n
			if take > max {
				take = max
			}
			out := buf[:take]
			q.copyOutLocked(out)
			// Release the ring's references to the moved items.
			first := q.head
			if tail := cap(q.buf) - first; tail < take {
				clear(q.buf[first:])
				clear(q.buf[:take-tail])
			} else {
				clear(q.buf[first : first+take])
			}
			q.head = (first + take) & (cap(q.buf) - 1)
			q.n -= take
			if q.n == 0 {
				q.resetLocked()
			}
			q.mu.Unlock()
			return out, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		q.waiting++
		q.cond.Wait()
		q.waiting--
	}
}

// resetLocked rewinds an emptied queue, releasing an oversized ring whose
// burst peak no longer justifies its capacity.
func (q *queue) resetLocked() {
	q.head = 0
	if cap(q.buf) > shrinkCap && q.peak*4 < cap(q.buf) {
		q.buf = nil
	}
	q.peak = 0
}

// close wakes all poppers; pending items are still drained by pop.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// crashCapture models the queue's owner dying: the queue closes *and* its
// undelivered backlog is taken away in one atomic step, so the consumer
// exits without processing it (a real crash loses exactly these tuples)
// and the caller gets them for replay. Producers racing the crash see a
// closed queue and re-route through the live route table.
func (q *queue) crashCapture() []queueItem {
	q.mu.Lock()
	q.closed = true
	var out []queueItem
	if q.n > 0 {
		out = make([]queueItem, q.n)
		q.copyOutLocked(out)
		q.buf, q.head, q.n, q.peak = nil, 0, 0, 0
	}
	q.mu.Unlock()
	q.cond.Broadcast()
	return out
}

// len reports the number of queued items.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
