package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chanSource is a minimal BatchSource over a channel, for spout tests.
type chanSource struct {
	ch     chan Values
	closed sync.Once
}

func newChanSource(buf int) *chanSource { return &chanSource{ch: make(chan Values, buf)} }

func (s *chanSource) PopBatch(done <-chan struct{}, buf []Values) ([]Values, bool) {
	max := cap(buf)
	if max == 0 {
		max = 1
		buf = make([]Values, 0, 1)
	}
	select {
	case v, ok := <-s.ch:
		if !ok {
			return nil, false
		}
		out := append(buf[:0], v)
		for len(out) < max {
			select {
			case v, ok := <-s.ch:
				if !ok {
					return out, true
				}
				out = append(out, v)
			default:
				return out, true
			}
		}
		return out, true
	case <-done:
		return nil, false
	}
}

func (s *chanSource) close() { s.closed.Do(func() { close(s.ch) }) }

// TestNetworkSpoutDeliversBatches: every payload pushed into the source
// reaches the topology exactly once, batches flow through EmitBatch, and
// the spout exits when the source closes.
func TestNetworkSpoutDeliversBatches(t *testing.T) {
	src := newChanSource(1024)
	var processed atomic.Int64
	topo, err := NewTopology().
		Spout("net", 1, func(int) Spout { return &NetworkSpout{Source: src, MaxBatch: 16} }).
		Bolt("count", 4, func(int) Bolt {
			return BoltFunc(func(Tuple, Emit) error {
				processed.Add(1)
				return nil
			})
		}).
		Shuffle("net", "count").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"count": 2}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		src.ch <- Values{i}
	}
	src.close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		count, _ := run.Completions()
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d network tuples completed", count, n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := processed.Load(); got != n {
		t.Fatalf("bolt processed %d tuples, want %d", got, n)
	}
}

// ackedChanSource wraps chanSource into an AckBatchSource: each popped
// batch is assigned a consecutive seq range and the ack closure records
// the completed ranges.
type ackedChanSource struct {
	*chanSource
	mu        sync.Mutex
	delivered uint64
	completed []uint64 // end seq of each completed range, in ack order
}

func (s *ackedChanSource) PopBatchAcked(done <-chan struct{}, buf []Values) ([]Values, func(), bool) {
	batch, ok := s.chanSource.PopBatch(done, buf)
	if !ok {
		return nil, nil, false
	}
	s.mu.Lock()
	s.delivered += uint64(len(batch))
	end := s.delivered
	s.mu.Unlock()
	return batch, func() {
		s.mu.Lock()
		s.completed = append(s.completed, end)
		s.mu.Unlock()
	}, true
}

// TestNetworkSpoutAckedBatches: a source implementing AckBatchSource is
// drained through the acked path — every payload is processed exactly
// once AND every popped batch's completion callback fires exactly once,
// with the summed range sizes covering every delivered tuple.
func TestNetworkSpoutAckedBatches(t *testing.T) {
	src := &ackedChanSource{chanSource: newChanSource(1024)}
	var processed atomic.Int64
	topo, err := NewTopology().
		Spout("net", 1, func(int) Spout { return &NetworkSpout{Source: src, MaxBatch: 16} }).
		Bolt("count", 4, func(int) Bolt {
			return BoltFunc(func(Tuple, Emit) error {
				processed.Add(1)
				return nil
			})
		}).
		Shuffle("net", "count").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"count": 2}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		src.ch <- Values{i}
	}
	src.close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		src.mu.Lock()
		doneAll := len(src.completed) > 0 && src.completed[len(src.completed)-1] == n && src.delivered == n
		// All ranges complete when the max completed end reaches n and
		// every delivered range has acked.
		var maxEnd uint64
		for _, e := range src.completed {
			if e > maxEnd {
				maxEnd = e
			}
		}
		doneAll = src.delivered == n && maxEnd == n
		src.mu.Unlock()
		if doneAll {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acked ranges never covered all %d tuples (delivered %d)", n, src.delivered)
		}
		time.Sleep(time.Millisecond)
	}
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := processed.Load(); got != n {
		t.Fatalf("bolt processed %d tuples, want %d", got, n)
	}
	// Exactly one ack per popped batch: ends are unique.
	seen := map[uint64]bool{}
	for _, e := range src.completed {
		if seen[e] {
			t.Fatalf("range ending at %d acked twice", e)
		}
		seen[e] = true
	}
}

// funcSpout adapts a closure to Spout for tests.
type funcSpout struct{ fn func(ctx SpoutContext) error }

func (s *funcSpout) Run(ctx SpoutContext) error { return s.fn(ctx) }

// TestEmitBatchAckedEmptyBatch: an empty batch must fire done immediately.
func TestEmitBatchAckedEmptyBatch(t *testing.T) {
	topo, err := NewTopology().
		Spout("s", 1, func(int) Spout {
			return &funcSpout{fn: func(ctx SpoutContext) error {
				fired := false
				ctx.EmitBatchAcked(nil, func() { fired = true })
				if !fired {
					t.Error("EmitBatchAcked(nil) did not fire done synchronously")
				}
				<-ctx.Done()
				return nil
			}}
		}).
		Bolt("sink", 1, func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }).
		Shuffle("s", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"sink": 1}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestNetworkSpoutStopsWithRun: a spout blocked on an idle source must
// exit promptly when the run stops (the done-channel fallback).
func TestNetworkSpoutStopsWithRun(t *testing.T) {
	src := newChanSource(1)
	topo, err := NewTopology().
		Spout("net", 1, func(int) Spout { return &NetworkSpout{Source: src} }).
		Bolt("sink", 1, func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }).
		Shuffle("net", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"sink": 1}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- run.Stop() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on an idle NetworkSpout")
	}
}
