package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chanSource is a minimal BatchSource over a channel, for spout tests.
type chanSource struct {
	ch     chan Values
	closed sync.Once
}

func newChanSource(buf int) *chanSource { return &chanSource{ch: make(chan Values, buf)} }

func (s *chanSource) PopBatch(done <-chan struct{}, buf []Values) ([]Values, bool) {
	max := cap(buf)
	if max == 0 {
		max = 1
		buf = make([]Values, 0, 1)
	}
	select {
	case v, ok := <-s.ch:
		if !ok {
			return nil, false
		}
		out := append(buf[:0], v)
		for len(out) < max {
			select {
			case v, ok := <-s.ch:
				if !ok {
					return out, true
				}
				out = append(out, v)
			default:
				return out, true
			}
		}
		return out, true
	case <-done:
		return nil, false
	}
}

func (s *chanSource) close() { s.closed.Do(func() { close(s.ch) }) }

// TestNetworkSpoutDeliversBatches: every payload pushed into the source
// reaches the topology exactly once, batches flow through EmitBatch, and
// the spout exits when the source closes.
func TestNetworkSpoutDeliversBatches(t *testing.T) {
	src := newChanSource(1024)
	var processed atomic.Int64
	topo, err := NewTopology().
		Spout("net", 1, func(int) Spout { return &NetworkSpout{Source: src, MaxBatch: 16} }).
		Bolt("count", 4, func(int) Bolt {
			return BoltFunc(func(Tuple, Emit) error {
				processed.Add(1)
				return nil
			})
		}).
		Shuffle("net", "count").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"count": 2}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		src.ch <- Values{i}
	}
	src.close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		count, _ := run.Completions()
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d network tuples completed", count, n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := processed.Load(); got != n {
		t.Fatalf("bolt processed %d tuples, want %d", got, n)
	}
}

// TestNetworkSpoutStopsWithRun: a spout blocked on an idle source must
// exit promptly when the run stops (the done-channel fallback).
func TestNetworkSpoutStopsWithRun(t *testing.T) {
	src := newChanSource(1)
	topo, err := NewTopology().
		Spout("net", 1, func(int) Spout { return &NetworkSpout{Source: src} }).
		Bolt("sink", 1, func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }).
		Shuffle("net", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"sink": 1}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- run.Stop() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on an idle NetworkSpout")
	}
}
