package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// Values is the payload of a tuple: a positional field list, as in Storm.
type Values []any

// Tuple is a unit of data flowing through the topology. The zero value is
// not useful; tuples are created by the engine when spouts and bolts emit.
type Tuple struct {
	// Values is the tuple payload.
	Values Values
	tree   *ackTree
}

// ackTree tracks one external tuple's processing tree: it completes when
// every derived tuple has been processed — the paper's definition of
// "fully processed", measured by Storm through its acking mechanism.
type ackTree struct {
	arrived time.Time
	pending atomic.Int64
	done    func(sojourn time.Duration)
}

// newRoot starts a tree with one pending node (the root tuple itself).
func newRoot(now time.Time, done func(time.Duration)) *ackTree {
	t := &ackTree{arrived: now, done: done}
	t.pending.Store(1)
	return t
}

// fork registers n more pending nodes (children emitted by a bolt). It must
// be called before the children are enqueued.
func (t *ackTree) fork(n int) {
	if n > 0 {
		t.pending.Add(int64(n))
	}
}

// ack resolves one node; the last ack fires the completion callback.
func (t *ackTree) ack(now time.Time) {
	if t.pending.Add(-1) == 0 {
		if t.done != nil {
			t.done(now.Sub(t.arrived))
		}
	}
}

// completionLog accumulates total sojourn times, concurrently, with both a
// per-interval view (drained into measurer reports) and a cumulative one.
type completionLog struct {
	mu sync.Mutex

	intervalCount int64
	intervalTotal time.Duration

	totalCount int64
	totalSum   time.Duration
}

func (c *completionLog) record(sojourn time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.intervalCount++
	c.intervalTotal += sojourn
	c.totalCount++
	c.totalSum += sojourn
}

// drain returns and resets the per-interval counters.
func (c *completionLog) drain() (count int64, total time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	count, total = c.intervalCount, c.intervalTotal
	c.intervalCount, c.intervalTotal = 0, 0
	return count, total
}

// totals returns the cumulative counters.
func (c *completionLog) totals() (count int64, total time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalCount, c.totalSum
}

// timeoutWatch tracks tuple-tree completion deadlines, like Storm's
// message-timeout: an external tuple whose tree has not completed within
// the timeout is counted as late (Storm would replay it; this engine
// surfaces the count so DRS's latency violations are observable even when
// individual results eventually arrive).
type timeoutWatch struct {
	timeout time.Duration
	late    atomic.Int64
	mu      sync.Mutex
	// entries holds completion deadlines of in-flight roots, FIFO;
	// completion marks the entry resolved instead of searching the queue.
	entries []*timeoutEntry
}

type timeoutEntry struct {
	deadline time.Time
	// resolved is set at completion time; lateness is decided right there
	// (a tree finishing after its deadline counts immediately), so the
	// expirer only counts trees that never finished.
	resolved atomic.Bool
}

// watch registers a new root; returns nil when timeouts are disabled.
func (w *timeoutWatch) watch(now time.Time) *timeoutEntry {
	if w == nil || w.timeout <= 0 {
		return nil
	}
	e := &timeoutEntry{deadline: now.Add(w.timeout)}
	w.mu.Lock()
	w.entries = append(w.entries, e)
	w.expireLocked(now)
	w.mu.Unlock()
	return e
}

// resolve records a tree completion, counting it late if past deadline.
func (w *timeoutWatch) resolve(e *timeoutEntry, now time.Time) {
	if w == nil || e == nil {
		return
	}
	if e.resolved.CompareAndSwap(false, true) && now.After(e.deadline) {
		w.late.Add(1)
	}
}

// expireLocked pops expired leading entries; any still unresolved will be
// counted late at their (eventual) completion, so the expirer only trims
// the queue and counts trees marked resolved-on-time or not at all. To
// keep "stuck forever" trees visible too, unresolved expired entries are
// counted here and marked, which resolve's CAS then skips.
func (w *timeoutWatch) expireLocked(now time.Time) {
	i := 0
	for ; i < len(w.entries); i++ {
		e := w.entries[i]
		if e.deadline.After(now) {
			break
		}
		if e.resolved.CompareAndSwap(false, true) {
			w.late.Add(1)
		}
	}
	if i > 0 {
		w.entries = append(w.entries[:0], w.entries[i:]...)
	}
}

// lateCount reports roots that missed their deadline so far.
func (w *timeoutWatch) lateCount(now time.Time) int64 {
	if w == nil || w.timeout <= 0 {
		return 0
	}
	w.mu.Lock()
	w.expireLocked(now)
	w.mu.Unlock()
	return w.late.Load()
}

// pendingRoots counts external tuples whose trees have not completed —
// the quiescence signal for rebalancing.
type pendingRoots struct {
	n atomic.Int64
}

func (p *pendingRoots) inc() { p.n.Add(1) }

func (p *pendingRoots) dec() { p.n.Add(-1) }

func (p *pendingRoots) value() int64 { return p.n.Load() }
