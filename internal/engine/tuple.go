package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/drs-repro/drs/internal/obs"
)

// Values is the payload of a tuple: a positional field list, as in Storm.
type Values []any

// Tuple is a unit of data flowing through the topology. The zero value is
// not useful; tuples are created by the engine when spouts and bolts emit.
type Tuple struct {
	// Values is the tuple payload.
	Values Values
	tree   *ackTree
	// handoff is the parent's service-end wall stamp (unix nanoseconds),
	// read only when the tuple's tree is traced: the child's queue-wait
	// span starts exactly where the parent's service span ended, so a
	// trace's segments telescope with no gaps or overlaps.
	handoff int64
}

// ackTree tracks one external tuple's processing tree: it completes when
// every derived tuple has been processed — the paper's definition of
// "fully processed", measured by Storm through its acking mechanism.
//
// Trees are pooled: the last ack is a unique release point (pending hits
// zero exactly once, and no fork can race with it because forks only
// happen while the forking node is itself pending), so the completing
// goroutine can recycle the tree after recording the sojourn.
type ackTree struct {
	arrived time.Time
	pending atomic.Int64
	run     *Run
	entry   *timeoutEntry
	// batch, when non-nil, is the EmitBatchAcked countdown this root
	// belongs to; completion decrements it (see batchAck).
	batch *batchAck
	// shard is a fixed rootLog shard, assigned once when the tree object
	// is first allocated; distinct pool objects land on distinct shards,
	// spreading concurrent completions across cache lines.
	shard uint32
	// trace is the sampled trace id (0 = untraced — the common case).
	// Children share the tree pointer, so the id rides the whole
	// processing tree for free; completion emits the root span and
	// clears it before the tree is pooled.
	trace uint64
	// arrivedNS is the root's arrival wall stamp, set only for traced
	// roots: trace segments are wall-clock diffs, so the root span (and
	// the traced root's book entry) must be too, or the telescoped
	// segment sum would drift from the sojourn by clock-step noise.
	arrivedNS int64
	// endNS is the maximum segment-end stamp any traced ack has recorded
	// (noteEnd). The completing ack is the last to *execute*, not the one
	// with the latest stamp — a parent that read its end before flushing
	// children can ack after a child already did — so the root span must
	// close at the max across acks or a trace's segments could extend
	// past its sojourn. Untraced trees never touch it.
	endNS atomic.Int64
}

var treeShardSeq atomic.Uint32

var treePool = sync.Pool{New: func() any {
	return &ackTree{shard: treeShardSeq.Add(1)}
}}

// newRootFor starts a pooled tree completing into r's root log and
// timeout watch. pending is zero here (both for fresh and recycled trees —
// completion leaves it at zero); the emitter's sealRoot installs the
// child count before any child is enqueued.
func newRootFor(r *Run, now time.Time, entry *timeoutEntry) *ackTree {
	t := treePool.Get().(*ackTree)
	t.arrived = now
	t.run = r
	t.entry = entry
	return t
}

// fork registers n more pending nodes (children emitted by a bolt). It must
// be called before the children are enqueued.
func (t *ackTree) fork(n int) {
	if n > 0 {
		t.pending.Add(int64(n))
	}
}

// ack resolves one node; the last ack completes the tree and recycles it.
func (t *ackTree) ack(now time.Time) {
	if t.pending.Add(-1) == 0 {
		t.complete(now)
	}
}

// ackLazy resolves one node without a timestamp in hand, reading the clock
// only if this ack completes the tree — the common non-completing ack of a
// fan-out tree costs no clock call.
func (t *ackTree) ackLazy() {
	if t.pending.Add(-1) == 0 {
		t.complete(time.Now())
	}
}

// noteEnd records a traced hop's segment-end stamp before its ack, keeping
// the running maximum. Called only on traced paths; the pending counter
// orders every noteEnd before the completing read in complete.
func (t *ackTree) noteEnd(ns int64) {
	for {
		cur := t.endNS.Load()
		if ns <= cur || t.endNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

func (t *ackTree) complete(now time.Time) {
	r := t.run
	sojourn := now.Sub(t.arrived)
	if t.trace != 0 {
		// Traced roots book the same wall-stamp sojourn their trace
		// carries, so the root span reconciles bit-for-bit with both the
		// segment telescope and the root log. The root closes at the max
		// segment end any ack noted, not the completing ack's own stamp —
		// the two differ when a parent's ack executes after its child's.
		endNS := now.UnixNano()
		if m := t.endNS.Load(); m > endNS {
			endNS = m
		}
		t.endNS.Store(0)
		ns := endNS - t.arrivedNS
		sojourn = time.Duration(ns)
		if tr := r.cfg.Tracer; tr != nil {
			span := obs.SpanRecord{Trace: t.trace, Kind: obs.SpanRoot, StartNS: t.arrivedNS, DurNS: ns}
			tr.EmitSpan(&span)
		}
		t.trace, t.arrivedNS = 0, 0
	}
	r.timeouts.resolve(t.entry, now)
	r.roots.complete(t.shard, sojourn)
	if b := t.batch; b != nil {
		t.batch = nil
		b.ack()
	}
	t.run, t.entry = nil, nil
	treePool.Put(t)
}

// batchAck is the countdown behind EmitBatchAcked: pending is installed
// at the batch size before any root can complete, and the last completing
// root fires done. The non-batched paths never touch it — the only cost
// they pay is complete's nil check.
type batchAck struct {
	pending atomic.Int64
	done    func()
}

// ack resolves one root of the batch; the last one fires done.
func (b *batchAck) ack() {
	if b.pending.Add(-1) == 0 {
		b.done()
	}
}

// logShards is the shard count of the hot per-root counters (power of two).
const logShards = 16

// rootShard is one padded shard of the root log: three monotonic counters
// on their own cache line, so roots on different shards never contend.
type rootShard struct {
	started   atomic.Int64 // roots created (external arrivals)
	completed atomic.Int64 // roots whose tree completed
	nanos     atomic.Int64 // summed total sojourn of completed roots
	_         [5]int64     // pad to a 64-byte line
}

// rootLog is the single hot-path account of external tuples: one sharded
// add when a root starts, two on the shard's own line when it completes.
// Everything else is derived: external arrivals and per-interval sojourn
// sums are differences between folds (the drainer keeps the previous fold
// under its own lock), and the pending count — the rebalance quiescence
// signal — is started minus completed. All counters are monotonic, so no
// drain ever races a record.
type rootLog struct {
	shards [logShards]rootShard
}

func (c *rootLog) start(shard uint32) {
	c.shards[shard%logShards].started.Add(1)
}

// startN counts a whole source batch in one add. The start shard need not
// match the trees' completion shards: started and completed are
// independent monotonic sums.
func (c *rootLog) startN(shard uint32, n int64) {
	c.shards[shard%logShards].started.Add(n)
}

func (c *rootLog) complete(shard uint32, sojourn time.Duration) {
	s := &c.shards[shard%logShards]
	s.completed.Add(1)
	s.nanos.Add(int64(sojourn))
}

// totals folds the shards into cumulative counts.
func (c *rootLog) totals() (started, completed, nanos int64) {
	for i := range c.shards {
		started += c.shards[i].started.Load()
		completed += c.shards[i].completed.Load()
		nanos += c.shards[i].nanos.Load()
	}
	return started, completed, nanos
}

// pending reports in-flight roots. All completed counters are read before
// any started counter: every observed completion's start (which preceded
// it) is then also observed, so concurrency can only overestimate — the
// quiescence check stays conservative.
func (c *rootLog) pending() (n int64) {
	for i := range c.shards {
		n -= c.shards[i].completed.Load()
	}
	for i := range c.shards {
		n += c.shards[i].started.Load()
	}
	return n
}

// timeoutWatch tracks tuple-tree completion deadlines, like Storm's
// message-timeout: an external tuple whose tree has not completed within
// the timeout is counted as late (Storm would replay it; this engine
// surfaces the count so DRS's latency violations are observable even when
// individual results eventually arrive).
type timeoutWatch struct {
	timeout time.Duration
	late    atomic.Int64
	mu      sync.Mutex
	// entries holds completion deadlines of in-flight roots, FIFO;
	// completion marks the entry resolved instead of searching the queue.
	entries []*timeoutEntry
}

type timeoutEntry struct {
	deadline time.Time
	// resolved is set at completion time; lateness is decided right there
	// (a tree finishing after its deadline counts immediately), so the
	// expirer only counts trees that never finished.
	resolved atomic.Bool
}

var entryPool = sync.Pool{New: func() any { return new(timeoutEntry) }}

// watch registers a new root; returns nil when timeouts are disabled.
func (w *timeoutWatch) watch(now time.Time) *timeoutEntry {
	if w == nil || w.timeout <= 0 {
		return nil
	}
	e := entryPool.Get().(*timeoutEntry)
	e.deadline = now.Add(w.timeout)
	e.resolved.Store(false)
	w.mu.Lock()
	w.entries = append(w.entries, e)
	w.expireLocked(now)
	w.mu.Unlock()
	return e
}

// resolve records a tree completion, counting it late if past deadline.
// The deadline is read before the CAS: once the CAS lands, the expirer may
// recycle the entry concurrently.
func (w *timeoutWatch) resolve(e *timeoutEntry, now time.Time) {
	if w == nil || e == nil {
		return
	}
	deadline := e.deadline
	if e.resolved.CompareAndSwap(false, true) && now.After(deadline) {
		w.late.Add(1)
	}
}

// expireLocked pops expired leading entries. An entry already resolved at
// trim time has no remaining referent and is recycled; an unresolved one is
// counted late here (keeping "stuck forever" trees visible), marked so
// resolve's CAS skips it, and left to the GC — its tree still holds the
// pointer and may resolve much later.
func (w *timeoutWatch) expireLocked(now time.Time) {
	i := 0
	for ; i < len(w.entries); i++ {
		e := w.entries[i]
		if e.deadline.After(now) {
			break
		}
		if e.resolved.CompareAndSwap(false, true) {
			w.late.Add(1)
		} else {
			entryPool.Put(e)
		}
		w.entries[i] = nil
	}
	if i > 0 {
		w.entries = append(w.entries[:0], w.entries[i:]...)
	}
}

// lateCount reports roots that missed their deadline so far.
func (w *timeoutWatch) lateCount(now time.Time) int64 {
	if w == nil || w.timeout <= 0 {
		return 0
	}
	w.mu.Lock()
	w.expireLocked(now)
	w.mu.Unlock()
	return w.late.Load()
}
