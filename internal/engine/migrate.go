package engine

// Task-migration planning. The paper's future-work reference [42] ("Optimal
// operator state migration for elastic data stream processing") observes
// that a rebalance should move as little operator state as possible. The
// engine's unit of state is the task, so the planner below computes a
// task→executor assignment for the new executor count that minimizes the
// number of tasks whose executor changes, subject to the balance constraint
// that executor loads differ by at most one task.
//
// The structure makes the optimum easy: with T tasks and n executors, every
// executor must hold ⌊T/n⌋ or ⌈T/n⌉ tasks. Keeping surviving executors'
// current tasks up to their new quota and redistributing only the overflow
// and the tasks of retired executors is optimal — any plan must move at
// least that much.

// planAssignment returns a new task->executor assignment for n executors,
// given the previous assignment over nOld executors (task index ->
// executor index). Executors 0..min(n,nOld)-1 are considered surviving;
// moved reports how many tasks changed executor.
func planAssignment(old []int, nOld, n int) (assign []int, moved int) {
	tasks := len(old)
	assign = make([]int, tasks)
	if n <= 0 {
		return assign, 0
	}
	base := tasks / n
	extra := tasks % n // the first `extra` executors get base+1 tasks
	quota := func(e int) int {
		if e < extra {
			return base + 1
		}
		return base
	}
	counts := make([]int, n)
	// Pass 1: keep tasks on their surviving executor while quota remains.
	var overflow []int
	for t, e := range old {
		if e >= 0 && e < n && counts[e] < quota(e) {
			assign[t] = e
			counts[e]++
		} else {
			assign[t] = -1
			overflow = append(overflow, t)
		}
	}
	// Pass 2: spread the overflow over executors with remaining quota.
	dst := 0
	for _, t := range overflow {
		for dst < n && counts[dst] >= quota(dst) {
			dst++
		}
		if dst == n {
			// All quotas met can only happen if tasks were miscounted;
			// fall back to round-robin to stay total.
			dst = 0
		}
		assign[t] = dst
		counts[dst]++
		moved++
	}
	return assign, moved
}

// naiveAssignment is the baseline the ablation benchmarks compare against:
// task t goes to executor t % n regardless of history.
func naiveAssignment(old []int, n int) (assign []int, moved int) {
	assign = make([]int, len(old))
	for t := range assign {
		assign[t] = t % n
		if assign[t] != old[t] {
			moved++
		}
	}
	return assign, moved
}
