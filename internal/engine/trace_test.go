package engine

import (
	"sync"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/obs"
)

// tracedChanSource wraps chanSource into a TracedBatchSource: each popped
// payload carries a caller-chosen trace id (0 = untraced), the way the
// ingest ring carries the admit-time sampling verdict.
type tracedChanSource struct {
	*chanSource
	traceFor func(seq uint64) uint64
	mu       sync.Mutex
	popped   uint64
}

func (s *tracedChanSource) PopBatchTraced(done <-chan struct{}, buf []Values, ids []uint64) ([]Values, []uint64, func(), bool) {
	batch, ok := s.chanSource.PopBatch(done, buf)
	if !ok {
		return nil, nil, nil, false
	}
	s.mu.Lock()
	ids = ids[:0]
	for range batch {
		s.popped++
		ids = append(ids, s.traceFor(s.popped))
	}
	s.mu.Unlock()
	return batch, ids, nil, true
}

// TestTraceReconciliationChain is the engine-level telescoping contract:
// on a two-bolt chain with every root traced, each completed trace's
// segment durations sum exactly to its root sojourn, the trace's booked
// sojourn equals the engine's own books, and every traced root yields
// exactly one complete trace.
func TestTraceReconciliationChain(t *testing.T) {
	var (
		mu        sync.Mutex
		completed []obs.Trace
	)
	asm := obs.NewAssembler(obs.AssemblerConfig{
		OnComplete: func(tr obs.Trace) {
			mu.Lock()
			completed = append(completed, tr)
			mu.Unlock()
		},
	})
	tracer := obs.NewTracer(obs.TracerConfig{
		Shards: 4, ShardCapacity: 1 << 16,
		Assembler: asm, FlushEvery: time.Millisecond,
	})

	src := &tracedChanSource{
		chanSource: newChanSource(1024),
		traceFor:   func(seq uint64) uint64 { return seq }, // trace everything
	}
	topo, err := NewTopology().
		Spout("net", 1, func(int) Spout { return &NetworkSpout{Source: src, MaxBatch: 16} }).
		Bolt("a", 2, func(int) Bolt {
			return BoltFunc(func(tup Tuple, emit Emit) error {
				emit(tup.Values) // chain: one child per tuple
				return nil
			})
		}).
		Bolt("b", 2, func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }).
		Shuffle("net", "a").
		Shuffle("a", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"a": 2, "b": 2}, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		src.ch <- Values{i}
	}
	src.close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		count, _ := run.Completions()
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d tuples completed", count, n)
		}
		time.Sleep(time.Millisecond)
	}
	_, _, bookedNS := run.RootTotals()
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(completed) != n {
		t.Fatalf("completed %d traces, want one per traced root (%d)", len(completed), n)
	}
	seen := make(map[uint64]bool, n)
	var tracedSojournNS int64
	for _, tr := range completed {
		if seen[tr.ID] {
			t.Fatalf("trace %d completed twice", tr.ID)
		}
		seen[tr.ID] = true
		if tr.ID < 1 || tr.ID > n {
			t.Fatalf("trace id %d outside the admitted range", tr.ID)
		}
		// The chain contract, exact: no gaps, no overlaps, no shuttle.
		if tr.QueueNS+tr.ServiceNS+tr.ShuttleNS != tr.SojournNS {
			t.Fatalf("trace %d does not telescope: queue %d + service %d + shuttle %d != sojourn %d",
				tr.ID, tr.QueueNS, tr.ServiceNS, tr.ShuttleNS, tr.SojournNS)
		}
		if tr.ShuttleNS != 0 || tr.Remote != 0 {
			t.Fatalf("trace %d crossed a shuttle in an all-local run: %+v", tr.ID, tr)
		}
		// Two hops, each a queue + service pair.
		if tr.Spans != 4 {
			t.Fatalf("trace %d folded %d segment spans, want 4", tr.ID, tr.Spans)
		}
		if tr.SojournNS <= 0 || tr.QueueNS < 0 || tr.ServiceNS < 0 {
			t.Fatalf("trace %d has impossible segments: %+v", tr.ID, tr)
		}
		tracedSojournNS += tr.SojournNS
	}
	// Traced roots book the same wall-stamp sojourn their trace measures,
	// so the books and the traces agree exactly.
	if tracedSojournNS != bookedNS {
		t.Fatalf("trace sojourn sum %d != engine books %d", tracedSojournNS, bookedNS)
	}
	st := tracer.Stats()
	if st.Dropped != 0 {
		t.Fatalf("dropped %d spans with oversized rings, want 0", st.Dropped)
	}
	ast := asm.Stats()
	if ast.Started != n || ast.Completed != n || ast.Pending != 0 || ast.Lost != 0 {
		t.Fatalf("assembler did not balance: %+v", ast)
	}
}

// TestTraceSampledOutRootsEmitNothing: roots whose trace id is zero flow
// through the traced spout path untraced — no spans, no assembler
// entries, books unaffected.
func TestTraceSampledOutRootsEmitNothing(t *testing.T) {
	asm := obs.NewAssembler(obs.AssemblerConfig{})
	tracer := obs.NewTracer(obs.TracerConfig{Assembler: asm, FlushEvery: time.Millisecond})
	src := &tracedChanSource{
		chanSource: newChanSource(1024),
		traceFor:   func(seq uint64) uint64 { return 0 }, // sample nothing
	}
	topo, err := NewTopology().
		Spout("net", 1, func(int) Spout { return &NetworkSpout{Source: src, MaxBatch: 16} }).
		Bolt("sink", 2, func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }).
		Shuffle("net", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"sink": 1}, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		src.ch <- Values{i}
	}
	src.close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		count, _ := run.Completions()
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d tuples completed", count, n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if st := tracer.Stats(); st.Spans != 0 {
		t.Fatalf("sampled-out run emitted %d spans, want 0", st.Spans)
	}
	if ast := asm.Stats(); ast.Started != 0 {
		t.Fatalf("assembler saw %d traces in a sampled-out run: %+v", ast.Started, ast)
	}
}
