package engine

import (
	"fmt"
	"runtime"
)

// Executor failure injection and recovery. A production stream processor
// loses workers mid-run; this engine models the crash at its own unit of
// execution — the executor goroutine — and recovers through the same
// route-table machinery a rebalance uses, replaying the crashed backlog so
// at-least-once semantics hold through the failure:
//
//  1. a replacement executor is installed at the victim's route-table
//     index (the task assignment is untouched, so this is the minimal
//     migration a rebalance planner could produce: zero tasks move);
//  2. the victim dies at its current tuple boundary: its kill switch
//     flips, its queue is crash-captured (closed, with the undelivered
//     backlog taken in the same atomic step), and the unprocessed tail of
//     its in-progress batch is abandoned for replay — a crash does not
//     get to finish its backlog;
//  3. both backlogs replay onto the replacement. Tuples a concurrent
//     emitter was still routing to the dead executor bounce off the
//     closed queue and re-route through the refreshed table (the
//     emitter's redeliver path), so the crash window loses nothing: every
//     pending root in the ack tree still completes.
//
// The sole work that survives from the victim is the tuple it was
// processing at the crash instant — it completes before the goroutine
// exits, which is the at-least-once guarantee, not a violation of it.

// FailExecutor injects a crash of one of a bolt's executors and recovers
// from it: the executor's backlog is replayed onto a fresh replacement
// wired into the same route-table slot. It returns the number of backlog
// tuples replayed. Concurrent Rebalance/Stop/FailExecutor calls are
// serialized.
func (r *Run) FailExecutor(bolt string, exec int) (replayed int, err error) {
	if r.stopped.Load() {
		return 0, ErrStopped
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Re-check under the lock: a Stop that won the race already closed
	// every queue, and installing a replacement now would leak its
	// goroutine (nothing would ever close the fresh queue).
	if r.stopped.Load() {
		return 0, ErrStopped
	}
	br := r.boltByName(bolt)
	if br == nil {
		return 0, errUnknownBolt(bolt)
	}
	old := br.route.Load()
	if exec < 0 || exec >= len(old.execs) {
		return 0, errExecRange(bolt, exec, len(old.execs))
	}
	victim := old.execs[exec]
	before := r.replayed.Load()
	// A crashed remote-bound executor recovers as a local goroutine: its
	// transport's fate is unknown, and the placement layer re-binds once
	// the worker proves live again.
	r.swapExecutorLocked(br, exec, nil)
	r.reapExecutorLocked(br, victim)
	r.execFailures.Add(1)
	return int(r.replayed.Load() - before), nil
}

// swapExecutorLocked installs a fresh executor — local when remote is nil,
// a remote drain loop otherwise — at one route-table slot, returning the
// displaced victim. The replacement is installed before the victim is
// touched, so an emitter that bounces off a closing queue finds the live
// successor on its very first route reload. The replacement inherits the
// victim's probe: its undrained arrivals/served counters survive the swap
// (the probe is concurrency-safe), so the measurer's λ̂ does not dip and
// replayed tuples — already counted as arrivals once — are not re-counted.
// Caller holds r.mu.
func (r *Run) swapExecutorLocked(br *boltRuntime, exec int, remote RemoteExecutor) (victim *executor) {
	old := br.route.Load()
	victim = old.execs[exec]
	replacement := &executor{
		q:     newQueue(),
		probe: victim.probe,
		done:  make(chan struct{}),
	}
	rt := &routeTable{execs: make([]*executor, len(old.execs)), assign: old.assign}
	copy(rt.execs, old.execs)
	rt.execs[exec] = replacement
	r.execWG.Add(1)
	if remote != nil {
		replacement.remote = remote
		replacement.sem = make(chan struct{}, RemoteInflight)
		replacement.kill = make(chan struct{})
		go r.runRemoteExecutor(br, replacement)
	} else {
		go r.runExecutor(br, replacement)
	}
	br.route.Store(rt)
	return victim
}

// reapExecutorLocked crashes a displaced executor and replays everything it
// still held: flip the kill switch, close the queue and seize its backlog
// atomically, release a remote drain loop parked on its in-flight window,
// wait for the goroutine to exit, then re-deliver the backlog plus any
// stranded items through the current route table. The victim stops at its
// current tuple boundary — a crash does not get to finish its backlog.
// Arrival probes are not re-counted on replay: the tuples arrived once
// already, and inflating λ̂ would bias the next control decision. Caller
// holds r.mu.
func (r *Run) reapExecutorLocked(br *boltRuntime, victim *executor) {
	victim.crashed.Store(true)
	victim.killRemote()
	backlog := victim.q.crashCapture()
	<-victim.done
	backlog = append(backlog, victim.takeStranded()...)
	for _, it := range backlog {
		if !r.redeliverItem(br, it) {
			it.tup.tree.ackLazy() // shutdown raced the crash
		}
	}
}

// errUnknownBolt names a bolt the topology does not have.
func errUnknownBolt(bolt string) error {
	return fmt.Errorf("engine: unknown bolt %q", bolt)
}

// errExecRange reports an executor index outside a bolt's current set.
func errExecRange(bolt string, exec, n int) error {
	return fmt.Errorf("engine: bolt %q: executor %d out of [0, %d)", bolt, exec, n)
}

// replayRemainder re-delivers the unprocessed tail of a crashed
// executor's in-progress batch ([start, start+count) in ring order)
// through the bolt's current route table. Called by the dying executor
// itself, after it stops serving.
func (r *Run) replayRemainder(br *boltRuntime, ring []queueItem, start, count int) {
	mask := len(ring) - 1
	for i := 0; i < count; i++ {
		it := &ring[(start+i)&mask]
		if !r.redeliverItem(br, *it) {
			it.tup.tree.ackLazy() // shutdown raced the crash
		}
		*it = queueItem{}
	}
}

// redeliverItem pushes one tuple to whatever executor the bolt's current
// route table assigns its task, retrying across route swaps (a second
// crash can land mid-replay). It reports false only when the run is
// stopping — the caller must then resolve the tuple's tree itself. The
// retry is unbounded by design: a queue only closes after its successor
// route is installed (FailExecutor, Rebalance) or once stopped is set
// (Stop), so a live run always makes progress and a capped retry would
// have to ack an unprocessed tuple — a silent at-least-once violation.
func (r *Run) redeliverItem(br *boltRuntime, it queueItem) bool {
	for {
		rt := br.route.Load()
		if rt.execs[rt.assign[it.task]].q.push(it) {
			r.replayed.Add(1)
			return true
		}
		if r.stopped.Load() {
			return false
		}
		runtime.Gosched()
	}
}

// ExecutorFailures reports how many executor crashes were injected.
func (r *Run) ExecutorFailures() int64 { return r.execFailures.Load() }

// Replayed reports how many tuples were re-delivered after a crash — the
// victim's captured backlog plus any in-flight emits that bounced off the
// dead executor's queue. Zero lost-forever tuples means completions catch
// up with arrivals even when this is non-zero.
func (r *Run) Replayed() int64 { return r.replayed.Load() }
