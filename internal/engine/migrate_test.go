package engine

import (
	"testing"
	"testing/quick"
	"time"
)

func countsOf(assign []int, n int) []int {
	counts := make([]int, n)
	for _, e := range assign {
		counts[e]++
	}
	return counts
}

func TestPlanAssignmentBalanced(t *testing.T) {
	tests := []struct {
		name       string
		tasks      int
		nOld, nNew int
	}{
		{"grow 2 to 5", 16, 2, 5},
		{"shrink 5 to 2", 16, 5, 2},
		{"same count", 16, 4, 4},
		{"one executor", 7, 3, 1},
		{"tasks equal executors", 6, 2, 6},
		{"indivisible", 10, 3, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			old := make([]int, tt.tasks)
			for i := range old {
				old[i] = i % tt.nOld
			}
			assign, moved := planAssignment(old, tt.nOld, tt.nNew)
			counts := countsOf(assign, tt.nNew)
			lo, hi := tt.tasks/tt.nNew, (tt.tasks+tt.nNew-1)/tt.nNew
			for e, c := range counts {
				if c < lo || c > hi {
					t.Errorf("executor %d holds %d tasks, want %d..%d", e, c, lo, hi)
				}
			}
			// moved must agree with a direct diff against surviving executors.
			want := 0
			for task, e := range assign {
				if e != old[task] {
					want++
				}
			}
			if moved != want {
				t.Errorf("moved = %d, diff says %d", moved, want)
			}
		})
	}
}

func TestPlanAssignmentMinimal(t *testing.T) {
	// Growing n by one from a balanced state must move exactly the number
	// of tasks the new executor's quota demands — no collateral shuffling.
	const tasks = 12
	old := make([]int, tasks)
	for i := range old {
		old[i] = i % 3 // 4 tasks each on executors 0..2
	}
	assign, moved := planAssignment(old, 3, 4)
	if moved != 3 { // new quotas: 3,3,3,3 -> one task leaves each old executor
		t.Errorf("grow 3->4 moved %d tasks, want 3", moved)
	}
	counts := countsOf(assign, 4)
	for e, c := range counts {
		if c != 3 {
			t.Errorf("executor %d holds %d, want 3", e, c)
		}
	}
	// Shrinking back must only move the retired executor's tasks.
	assign2, moved2 := planAssignment(assign, 4, 3)
	if moved2 != 3 {
		t.Errorf("shrink 4->3 moved %d tasks, want 3 (the retired executor's)", moved2)
	}
	if got := countsOf(assign2, 3); got[0] != 4 || got[1] != 4 || got[2] != 4 {
		t.Errorf("post-shrink counts = %v", got)
	}
}

func TestPlanAssignmentBeatsNaive(t *testing.T) {
	// Property: the migration-aware plan never moves more tasks than the
	// naive modulo plan, over random previous assignments.
	f := func(tasksSeed, oldSeed, newSeed uint8) bool {
		tasks := 1 + int(tasksSeed%64)
		nOld := 1 + int(oldSeed%8)
		nNew := 1 + int(newSeed%8)
		if nOld > tasks {
			nOld = tasks
		}
		if nNew > tasks {
			nNew = tasks
		}
		old := make([]int, tasks)
		for i := range old {
			old[i] = i % nOld
		}
		_, planMoved := planAssignment(old, nOld, nNew)
		_, naiveMoved := naiveAssignment(old, nNew)
		return planMoved <= naiveMoved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPlanAssignmentNoChangeMeansNoMoves(t *testing.T) {
	old := []int{0, 1, 2, 0, 1, 2}
	_, moved := planAssignment(old, 3, 3)
	if moved != 0 {
		t.Errorf("identical executor count moved %d tasks, want 0", moved)
	}
}

func TestRebalanceReportsMoves(t *testing.T) {
	_, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &pacedSpout{period: time.Millisecond} }).
		Bolt("sink", 12, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 3})
	waitCompleted(t, run, 20)
	if err := run.Rebalance(map[string]int{"sink": 4}); err != nil {
		t.Fatal(err)
	}
	moves := run.LastRebalanceMoves()
	// 12 tasks, 3 -> 4 executors: quotas 4,4,4 -> 3,3,3,3; exactly 3 move.
	if got := moves["sink"]; got != 3 {
		t.Errorf("moved = %d tasks, want 3 (migration-aware)", got)
	}
	// No-op rebalance leaves the report unchanged but must not fabricate moves.
	if err := run.Rebalance(map[string]int{"sink": 4}); err != nil {
		t.Fatal(err)
	}
	if got := run.LastRebalanceMoves()["sink"]; got != 3 {
		t.Errorf("no-op rebalance altered the move report: %d", got)
	}
}
