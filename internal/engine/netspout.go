package engine

import "time"

// BatchSource feeds a NetworkSpout with externally produced tuple payloads
// — the bridge between an ingestion tier (a network front end decoding
// client records) and the topology. Implementations are single-consumer:
// exactly one spout instance drains a source.
type BatchSource interface {
	// PopBatch blocks until payloads are available, moves up to cap(buf)
	// of them into buf under one synchronization round, and returns the
	// filled prefix (aliasing buf, so the caller may reuse its buffer
	// between calls). It returns ok=false only once the source is closed
	// AND fully drained — pending admitted payloads are always delivered
	// first — or promptly after done is closed (shutdown fallback for a
	// source that is never closed).
	PopBatch(done <-chan struct{}, buf []Values) (batch []Values, ok bool)
}

// AckBatchSource is a BatchSource that also wants to know when each
// popped batch has been fully processed — the durable ingest path, where
// the completion callback advances the WAL ack watermark. A source
// implementing it is drained through PopBatchAcked and each batch is
// injected via SpoutContext.EmitBatchAcked.
type AckBatchSource interface {
	BatchSource
	// PopBatchAcked is PopBatch returning additionally the completion
	// callback for the popped batch; the spout hands it to
	// EmitBatchAcked. ack may be nil for a batch that needs no
	// completion tracking.
	PopBatchAcked(done <-chan struct{}, buf []Values) (batch []Values, ack func(), ok bool)
}

// NetworkSpout adapts a BatchSource to the Spout interface: it drains the
// source in batches and injects each batch through SpoutContext.EmitBatch,
// so a whole network read's worth of tuples shares one clock stamp and one
// enqueue per destination executor. During a rebalance pause it holds the
// batch instead of emitting — the source's bounded buffer absorbs the
// stall and, past its capacity, pushes explicit backpressure to clients
// rather than growing the data plane's queues.
type NetworkSpout struct {
	// Source yields the decoded payloads (required).
	Source BatchSource
	// MaxBatch caps the tuples injected per EmitBatch call (default 256).
	MaxBatch int
}

// Run drains the source until it closes (or the run stops).
func (s *NetworkSpout) Run(ctx SpoutContext) error {
	max := s.MaxBatch
	if max <= 0 {
		max = 256
	}
	acked, _ := s.Source.(AckBatchSource)
	buf := make([]Values, 0, max)
	for {
		var batch []Values
		var ack func()
		var ok bool
		if acked != nil {
			batch, ack, ok = acked.PopBatchAcked(ctx.Done(), buf)
		} else {
			batch, ok = s.Source.PopBatch(ctx.Done(), buf)
		}
		if !ok {
			return nil
		}
		for ctx.Paused() {
			select {
			case <-ctx.Done():
				return nil
			default:
				time.Sleep(time.Millisecond)
			}
		}
		if ack != nil {
			ctx.EmitBatchAcked(batch, ack)
		} else {
			ctx.EmitBatch(batch)
		}
	}
}
