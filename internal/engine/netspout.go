package engine

import "time"

// BatchSource feeds a NetworkSpout with externally produced tuple payloads
// — the bridge between an ingestion tier (a network front end decoding
// client records) and the topology. Implementations are single-consumer:
// exactly one spout instance drains a source.
type BatchSource interface {
	// PopBatch blocks until payloads are available, moves up to cap(buf)
	// of them into buf under one synchronization round, and returns the
	// filled prefix (aliasing buf, so the caller may reuse its buffer
	// between calls). It returns ok=false only once the source is closed
	// AND fully drained — pending admitted payloads are always delivered
	// first — or promptly after done is closed (shutdown fallback for a
	// source that is never closed).
	PopBatch(done <-chan struct{}, buf []Values) (batch []Values, ok bool)
}

// NetworkSpout adapts a BatchSource to the Spout interface: it drains the
// source in batches and injects each batch through SpoutContext.EmitBatch,
// so a whole network read's worth of tuples shares one clock stamp and one
// enqueue per destination executor. During a rebalance pause it holds the
// batch instead of emitting — the source's bounded buffer absorbs the
// stall and, past its capacity, pushes explicit backpressure to clients
// rather than growing the data plane's queues.
type NetworkSpout struct {
	// Source yields the decoded payloads (required).
	Source BatchSource
	// MaxBatch caps the tuples injected per EmitBatch call (default 256).
	MaxBatch int
}

// Run drains the source until it closes (or the run stops).
func (s *NetworkSpout) Run(ctx SpoutContext) error {
	max := s.MaxBatch
	if max <= 0 {
		max = 256
	}
	buf := make([]Values, 0, max)
	for {
		batch, ok := s.Source.PopBatch(ctx.Done(), buf)
		if !ok {
			return nil
		}
		for ctx.Paused() {
			select {
			case <-ctx.Done():
				return nil
			default:
				time.Sleep(time.Millisecond)
			}
		}
		ctx.EmitBatch(batch)
	}
}
