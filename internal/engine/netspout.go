package engine

import "time"

// BatchSource feeds a NetworkSpout with externally produced tuple payloads
// — the bridge between an ingestion tier (a network front end decoding
// client records) and the topology. Implementations are single-consumer:
// exactly one spout instance drains a source.
type BatchSource interface {
	// PopBatch blocks until payloads are available, moves up to cap(buf)
	// of them into buf under one synchronization round, and returns the
	// filled prefix (aliasing buf, so the caller may reuse its buffer
	// between calls). It returns ok=false only once the source is closed
	// AND fully drained — pending admitted payloads are always delivered
	// first — or promptly after done is closed (shutdown fallback for a
	// source that is never closed).
	PopBatch(done <-chan struct{}, buf []Values) (batch []Values, ok bool)
}

// AckBatchSource is a BatchSource that also wants to know when each
// popped batch has been fully processed — the durable ingest path, where
// the completion callback advances the WAL ack watermark. A source
// implementing it is drained through PopBatchAcked and each batch is
// injected via SpoutContext.EmitBatchAcked.
type AckBatchSource interface {
	BatchSource
	// PopBatchAcked is PopBatch returning additionally the completion
	// callback for the popped batch; the spout hands it to
	// EmitBatchAcked. ack may be nil for a batch that needs no
	// completion tracking.
	PopBatchAcked(done <-chan struct{}, buf []Values) (batch []Values, ack func(), ok bool)
}

// TracedBatchSource is an AckBatchSource whose payloads carry trace ids
// assigned at the ingest gate (0 = untraced; nonzero only for roots that
// won the deterministic sampling hash). A NetworkSpout drains it through
// PopBatchTraced when the run's SpoutContext supports traced injection,
// so the trace context crosses the ring without widening the payload.
type TracedBatchSource interface {
	BatchSource
	// PopBatchTraced is PopBatchAcked additionally filling ids with the
	// trace id of each popped payload, aligned with the returned batch
	// (traces aliases ids as batch aliases buf). ack may be nil.
	PopBatchTraced(done <-chan struct{}, buf []Values, ids []uint64) (batch []Values, traces []uint64, ack func(), ok bool)
}

// TracedSpoutContext is the traced-injection seam: the engine's spout
// context implements it, and sources that carry trace ids are injected
// through EmitBatchTraced so each root's ack tree inherits its id.
type TracedSpoutContext interface {
	SpoutContext
	// EmitBatchTraced is EmitBatchAcked for payloads with trace ids
	// (traces[i] == 0 injects an untraced root); done may be nil for a
	// batch that needs no completion tracking.
	EmitBatchTraced(vs []Values, traces []uint64, done func())
}

// NetworkSpout adapts a BatchSource to the Spout interface: it drains the
// source in batches and injects each batch through SpoutContext.EmitBatch,
// so a whole network read's worth of tuples shares one clock stamp and one
// enqueue per destination executor. During a rebalance pause it holds the
// batch instead of emitting — the source's bounded buffer absorbs the
// stall and, past its capacity, pushes explicit backpressure to clients
// rather than growing the data plane's queues.
type NetworkSpout struct {
	// Source yields the decoded payloads (required).
	Source BatchSource
	// MaxBatch caps the tuples injected per EmitBatch call (default 256).
	MaxBatch int
}

// Run drains the source until it closes (or the run stops).
func (s *NetworkSpout) Run(ctx SpoutContext) error {
	max := s.MaxBatch
	if max <= 0 {
		max = 256
	}
	acked, _ := s.Source.(AckBatchSource)
	traced, _ := s.Source.(TracedBatchSource)
	tctx, _ := ctx.(TracedSpoutContext)
	if tctx == nil {
		traced = nil // no traced seam downstream; ids would be dropped
	}
	buf := make([]Values, 0, max)
	var ids []uint64
	if traced != nil {
		ids = make([]uint64, 0, max)
	}
	for {
		var batch []Values
		var traceIDs []uint64
		var ack func()
		var ok bool
		switch {
		case traced != nil:
			batch, traceIDs, ack, ok = traced.PopBatchTraced(ctx.Done(), buf, ids)
		case acked != nil:
			batch, ack, ok = acked.PopBatchAcked(ctx.Done(), buf)
		default:
			batch, ok = s.Source.PopBatch(ctx.Done(), buf)
		}
		if !ok {
			return nil
		}
		for ctx.Paused() {
			select {
			case <-ctx.Done():
				return nil
			default:
				time.Sleep(time.Millisecond)
			}
		}
		switch {
		case traceIDs != nil:
			tctx.EmitBatchTraced(batch, traceIDs, ack)
		case ack != nil:
			ctx.EmitBatchAcked(batch, ack)
		default:
			ctx.EmitBatch(batch)
		}
	}
}
