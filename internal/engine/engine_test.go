package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// burstSpout emits n tuples as fast as possible, then idles until stopped.
type burstSpout struct {
	n      int
	values func(i int) Values
}

func (s *burstSpout) Run(ctx SpoutContext) error {
	for i := 0; i < s.n; i++ {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		v := Values{i}
		if s.values != nil {
			v = s.values(i)
		}
		ctx.Emit(v)
	}
	<-ctx.Done()
	return nil
}

// collectBolt records every value it sees, concurrency-safely.
type collectBolt struct {
	mu   sync.Mutex
	seen []Values
}

func (b *collectBolt) Process(t Tuple, _ Emit) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seen = append(b.seen, t.Values)
	return nil
}

func (b *collectBolt) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.seen)
}

// sharedCollector hands the same collector to every task so totals are easy.
func sharedCollector() (*collectBolt, BoltFactory) {
	c := &collectBolt{}
	return c, func(int) Bolt { return c }
}

func startTopo(t *testing.T, topo *Topology, alloc map[string]int) *Run {
	t.Helper()
	run, err := topo.Start(RunConfig{Alloc: alloc, QuiesceTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = run.Stop() })
	return run
}

func waitCompleted(t *testing.T, run *Run, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, _ := run.Completions()
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d of %d tuples completed", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBuilderValidation(t *testing.T) {
	okSpout := func(int) Spout { return &burstSpout{n: 0} }
	okBolt := func(int) Bolt { return BoltFunc(func(Tuple, Emit) error { return nil }) }
	tests := []struct {
		name  string
		build func() (*Topology, error)
	}{
		{"no spout", func() (*Topology, error) {
			return NewTopology().Bolt("b", 1, okBolt).Build()
		}},
		{"no bolt", func() (*Topology, error) {
			return NewTopology().Spout("s", 1, okSpout).Build()
		}},
		{"duplicate name", func() (*Topology, error) {
			return NewTopology().Spout("x", 1, okSpout).Bolt("x", 1, okBolt).Build()
		}},
		{"empty name", func() (*Topology, error) {
			return NewTopology().Spout("", 1, okSpout).Build()
		}},
		{"zero instances", func() (*Topology, error) {
			return NewTopology().Spout("s", 0, okSpout).Build()
		}},
		{"zero tasks", func() (*Topology, error) {
			return NewTopology().Spout("s", 1, okSpout).Bolt("b", 0, okBolt).Build()
		}},
		{"nil bolt factory", func() (*Topology, error) {
			return NewTopology().Spout("s", 1, okSpout).Bolt("b", 1, nil).Build()
		}},
		{"edge to unknown", func() (*Topology, error) {
			return NewTopology().Spout("s", 1, okSpout).Bolt("b", 1, okBolt).
				Shuffle("s", "zzz").Build()
		}},
		{"edge from unknown", func() (*Topology, error) {
			return NewTopology().Spout("s", 1, okSpout).Bolt("b", 1, okBolt).
				Shuffle("zzz", "b").Build()
		}},
		{"edge into spout", func() (*Topology, error) {
			return NewTopology().Spout("s", 1, okSpout).Bolt("b", 1, okBolt).
				Shuffle("b", "s").Build()
		}},
		{"nil fields key", func() (*Topology, error) {
			return NewTopology().Spout("s", 1, okSpout).Bolt("b", 1, okBolt).
				Fields("s", "b", nil).Build()
		}},
		{"unreachable bolt", func() (*Topology, error) {
			return NewTopology().Spout("s", 1, okSpout).
				Bolt("a", 1, okBolt).Bolt("orphan", 1, okBolt).
				Shuffle("s", "a").Build()
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestAllTuplesProcessedAndAcked(t *testing.T) {
	const n = 500
	collector, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("sink", 8, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 4})
	waitCompleted(t, run, n)
	if got := collector.count(); got != n {
		t.Errorf("processed %d tuples, want %d", got, n)
	}
	count, mean := run.Completions()
	if count != n {
		t.Errorf("completions = %d, want %d", count, n)
	}
	if mean <= 0 {
		t.Errorf("mean sojourn = %v, want > 0", mean)
	}
}

func TestChainWithFanOut(t *testing.T) {
	// Each input emits 3 children to the second bolt: sink sees 3n, and
	// every root still completes exactly once.
	const n = 200
	collector, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("fan", 4, func(int) Bolt {
			return BoltFunc(func(t Tuple, emit Emit) error {
				for j := 0; j < 3; j++ {
					emit(Values{t.Values[0], j})
				}
				return nil
			})
		}).
		Bolt("sink", 4, factory).
		Shuffle("src", "fan").
		Shuffle("fan", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"fan": 2, "sink": 2})
	waitCompleted(t, run, n)
	if got := collector.count(); got != 3*n {
		t.Errorf("sink saw %d tuples, want %d", got, 3*n)
	}
}

func TestFieldsGroupingRoutesByKey(t *testing.T) {
	// With fields grouping, every tuple with the same key must be handled
	// by the same task.
	const n = 400
	var mu sync.Mutex
	keyToTask := make(map[int]int)
	conflict := false
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout {
			return &burstSpout{n: n, values: func(i int) Values { return Values{i % 10} }}
		}).
		Bolt("sink", 8, func(task int) Bolt {
			return BoltFunc(func(t Tuple, _ Emit) error {
				k := t.Values[0].(int)
				mu.Lock()
				defer mu.Unlock()
				if prev, ok := keyToTask[k]; ok && prev != task {
					conflict = true
				}
				keyToTask[k] = task
				return nil
			})
		}).
		Fields("src", "sink", func(v Values) uint64 { return uint64(v[0].(int)) }).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 4})
	waitCompleted(t, run, n)
	mu.Lock()
	defer mu.Unlock()
	if conflict {
		t.Error("fields grouping sent one key to multiple tasks")
	}
	if len(keyToTask) != 10 {
		t.Errorf("saw %d distinct keys, want 10", len(keyToTask))
	}
}

func TestBroadcastReachesEveryTask(t *testing.T) {
	const n, tasks = 50, 6
	var counts [tasks]atomic.Int64
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("sink", tasks, func(task int) Bolt {
			return BoltFunc(func(Tuple, Emit) error {
				counts[task].Add(1)
				return nil
			})
		}).
		Broadcast("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 3})
	waitCompleted(t, run, n)
	for task := 0; task < tasks; task++ {
		if got := counts[task].Load(); got != n {
			t.Errorf("task %d saw %d tuples, want %d", task, got, n)
		}
	}
}

// loopBolt forwards a decrementing hop counter back to itself.
type loopBolt struct{}

func (loopBolt) Process(t Tuple, emit Emit) error {
	hops := t.Values[0].(int)
	if hops > 0 {
		emit(Values{hops - 1})
	}
	return nil
}

func TestLoopTopologyCompletes(t *testing.T) {
	// Every tuple cycles through the bolt 4 times (hops=3 re-emissions);
	// trees must still complete.
	const n = 100
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout {
			return &burstSpout{n: n, values: func(int) Values { return Values{3} }}
		}).
		Bolt("looper", 4, func(int) Bolt { return loopBolt{} }).
		Shuffle("src", "looper").
		Shuffle("looper", "looper").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"looper": 2})
	waitCompleted(t, run, n)
	rep := run.DrainInterval()
	// 4 visits per external tuple.
	if got := rep.Ops[0].Served; got != 4*n {
		t.Errorf("looper served %d, want %d", got, 4*n)
	}
}

func TestStatefulTasksSurviveRebalance(t *testing.T) {
	// Task-local counters must keep their values across a rebalance
	// because instances stay bound to tasks, not executors.
	const tasks = 6
	var stage1 [tasks]int64
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &pacedSpout{period: time.Millisecond} }).
		Bolt("count", tasks, func(task int) Bolt {
			var local int64
			return BoltFunc(func(Tuple, Emit) error {
				local++
				atomic.StoreInt64(&stage1[task], local)
				return nil
			})
		}).
		Shuffle("src", "count").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"count": 2})
	waitCompleted(t, run, 100)
	var before int64
	for i := range stage1 {
		before += atomic.LoadInt64(&stage1[i])
	}
	if err := run.Rebalance(map[string]int{"count": 5}); err != nil {
		t.Fatal(err)
	}
	if got := run.Allocation()["count"]; got != 5 {
		t.Errorf("allocation after rebalance = %d, want 5", got)
	}
	waitCompleted(t, run, before+100)
	var after int64
	for i := range stage1 {
		after += atomic.LoadInt64(&stage1[i])
	}
	if after <= before {
		t.Errorf("counters did not advance after rebalance: %d -> %d", before, after)
	}
}

// pacedSpout emits forever at a fixed period, respecting pause.
type pacedSpout struct {
	period time.Duration
}

func (s *pacedSpout) Run(ctx SpoutContext) error {
	tick := time.NewTicker(s.period)
	defer tick.Stop()
	i := 0
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
			if ctx.Paused() {
				continue
			}
			ctx.Emit(Values{i})
			i++
		}
	}
}

func TestRebalanceValidation(t *testing.T) {
	collector, factory := sharedCollector()
	_ = collector
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: 10} }).
		Bolt("sink", 4, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 2})
	waitCompleted(t, run, 10)
	if err := run.Rebalance(map[string]int{"sink": 9}); err == nil {
		t.Error("rebalance above task count should fail")
	}
	if err := run.Rebalance(map[string]int{"sink": 0}); err == nil {
		t.Error("rebalance to zero should fail")
	}
	if err := run.Rebalance(map[string]int{"sink": 2}); err != nil {
		t.Errorf("no-op rebalance should succeed: %v", err)
	}
}

func TestStartValidation(t *testing.T) {
	_, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: 1} }).
		Bolt("sink", 4, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Start(RunConfig{}); err == nil {
		t.Error("missing allocation should fail")
	}
	if _, err := topo.Start(RunConfig{Alloc: map[string]int{"sink": 5}}); err == nil {
		t.Error("allocation above tasks should fail")
	}
	if _, err := topo.Start(RunConfig{Alloc: map[string]int{"sink": 0}}); err == nil {
		t.Error("zero allocation should fail")
	}
}

func TestDrainIntervalCounters(t *testing.T) {
	const n = 300
	_, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("sink", 4, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 2})
	waitCompleted(t, run, n)
	rep := run.DrainInterval()
	if rep.ExternalArrivals != n {
		t.Errorf("external arrivals = %d, want %d", rep.ExternalArrivals, n)
	}
	if rep.Ops[0].Arrivals != n || rep.Ops[0].Served != n {
		t.Errorf("op counters = %+v, want %d arrivals/served", rep.Ops[0], n)
	}
	if rep.SojournCount != n || rep.SojournTotal <= 0 {
		t.Errorf("sojourn counters = %d/%v", rep.SojournCount, rep.SojournTotal)
	}
	// Second drain is empty.
	rep2 := run.DrainInterval()
	if rep2.ExternalArrivals != 0 || rep2.Ops[0].Served != 0 || rep2.SojournCount != 0 {
		t.Errorf("second drain not empty: %+v", rep2)
	}
}

func TestBoltErrorsAreCountedNotFatal(t *testing.T) {
	const n = 100
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: n} }).
		Bolt("flaky", 2, func(int) Bolt {
			return BoltFunc(func(t Tuple, _ Emit) error {
				if t.Values[0].(int)%2 == 0 {
					return fmt.Errorf("even tuple %v", t.Values[0])
				}
				return nil
			})
		}).
		Shuffle("src", "flaky").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"flaky": 2})
	waitCompleted(t, run, n)
	count, last := run.Errors("flaky")
	if count != n/2 {
		t.Errorf("error count = %d, want %d", count, n/2)
	}
	if last == nil {
		t.Error("last error should be retained")
	}
	if _, err := run.Errors("nope"); err == nil {
		t.Error("unknown bolt should error")
	}
}

func TestStopIsIdempotentAndFinal(t *testing.T) {
	_, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &pacedSpout{period: time.Millisecond} }).
		Bolt("sink", 2, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{Alloc: map[string]int{"sink": 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, run, 10)
	if err := run.Stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	if err := run.Stop(); !errors.Is(err, ErrStopped) {
		t.Errorf("second stop = %v, want ErrStopped", err)
	}
	if err := run.Rebalance(map[string]int{"sink": 2}); !errors.Is(err, ErrStopped) {
		t.Errorf("rebalance after stop = %v, want ErrStopped", err)
	}
}

func TestQueueBasics(t *testing.T) {
	q := newQueue()
	if !q.push(queueItem{task: 1}) {
		t.Fatal("push on open queue failed")
	}
	if got := q.len(); got != 1 {
		t.Errorf("len = %d, want 1", got)
	}
	it, ok := q.pop()
	if !ok || it.task != 1 {
		t.Errorf("pop = (%+v, %v)", it, ok)
	}
	q.close()
	if q.push(queueItem{}) {
		t.Error("push after close should fail")
	}
	if _, ok := q.pop(); ok {
		t.Error("pop on closed empty queue should report closed")
	}
}

func TestQueueDrainsAfterClose(t *testing.T) {
	q := newQueue()
	q.push(queueItem{task: 1})
	q.push(queueItem{task: 2})
	q.close()
	for want := 1; want <= 2; want++ {
		it, ok := q.pop()
		if !ok || it.task != want {
			t.Fatalf("pop %d = (%+v, %v)", want, it, ok)
		}
	}
	if _, ok := q.pop(); ok {
		t.Error("queue should be exhausted")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := newQueue()
	const producers, per = 4, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.push(queueItem{task: i})
			}
		}()
	}
	var consumed atomic.Int64
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				if _, ok := q.pop(); !ok {
					return
				}
				consumed.Add(1)
			}
		}()
	}
	wg.Wait()
	q.close()
	cg.Wait()
	if got := consumed.Load(); got != producers*per {
		t.Errorf("consumed %d, want %d", got, producers*per)
	}
}

func TestSpoutPauseDuringRebalance(t *testing.T) {
	_, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 2, func(int) Spout { return &pacedSpout{period: 500 * time.Microsecond} }).
		Bolt("sink", 8, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 2})
	waitCompleted(t, run, 200)
	for i := 0; i < 5; i++ {
		target := 2 + (i % 3)
		if err := run.Rebalance(map[string]int{"sink": target}); err != nil {
			t.Fatalf("rebalance %d: %v", i, err)
		}
	}
	n1, _ := run.Completions()
	waitCompleted(t, run, n1+100)
}

func TestBoltNames(t *testing.T) {
	_, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: 1} }).
		Bolt("b1", 1, factory).
		Bolt("b2", 1, factory).
		Shuffle("src", "b1").
		Shuffle("b1", "b2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	names := topo.BoltNames()
	if len(names) != 2 || names[0] != "b1" || names[1] != "b2" {
		t.Errorf("BoltNames = %v", names)
	}
}

// slowBolt sleeps per tuple, long enough to blow a tight tuple timeout.
type slowBolt struct{ d time.Duration }

func (b slowBolt) Process(Tuple, Emit) error {
	time.Sleep(b.d)
	return nil
}

func TestTupleTimeoutCountsLateTrees(t *testing.T) {
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: 30} }).
		Bolt("slow", 2, func(int) Bolt { return slowBolt{d: 5 * time.Millisecond} }).
		Shuffle("src", "slow").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// One executor at 5ms/tuple with a 10ms timeout: most of the 30 queued
	// tuples miss their deadline.
	run, err := topo.Start(RunConfig{
		Alloc:        map[string]int{"slow": 1},
		TupleTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = run.Stop() })
	waitCompleted(t, run, 30)
	if late := run.LateTuples(); late < 20 {
		t.Errorf("late tuples = %d, want most of 30", late)
	}
}

func TestTupleTimeoutDisabledByDefault(t *testing.T) {
	_, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: 10} }).
		Bolt("sink", 2, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := startTopo(t, topo, map[string]int{"sink": 1})
	waitCompleted(t, run, 10)
	if late := run.LateTuples(); late != 0 {
		t.Errorf("late tuples = %d without a timeout configured", late)
	}
}

func TestTupleTimeoutFastTopologyHasNoLateTuples(t *testing.T) {
	_, factory := sharedCollector()
	topo, err := NewTopology().
		Spout("src", 1, func(int) Spout { return &burstSpout{n: 50} }).
		Bolt("sink", 4, factory).
		Shuffle("src", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(RunConfig{
		Alloc:        map[string]int{"sink": 4},
		TupleTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = run.Stop() })
	waitCompleted(t, run, 50)
	if late := run.LateTuples(); late != 0 {
		t.Errorf("late tuples = %d on an over-provisioned topology", late)
	}
}

func TestLoadSkewDetectsHotKey(t *testing.T) {
	// Shuffle spreads evenly (skew ~1); fields grouping with one hot key
	// concentrates load on a single task's executor (skew >> 1).
	const n = 600
	_, factory := sharedCollector()
	build := func(hot bool) *Run {
		b := NewTopology().
			Spout("src", 1, func(int) Spout {
				return &burstSpout{n: n, values: func(i int) Values {
					if hot {
						return Values{0} // every tuple shares one key
					}
					return Values{i}
				}}
			}).
			Bolt("sink", 8, factory)
		if hot {
			b.Fields("src", "sink", func(v Values) uint64 { return uint64(v[0].(int)) })
		} else {
			b.Shuffle("src", "sink")
		}
		topo, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return startTopo(t, topo, map[string]int{"sink": 4})
	}

	balanced := build(false)
	waitCompleted(t, balanced, n)
	skewBalanced, err := balanced.LoadSkew("sink")
	if err != nil {
		t.Fatal(err)
	}
	if skewBalanced > 1.3 {
		t.Errorf("shuffle skew = %.2f, want near 1", skewBalanced)
	}

	skewed := build(true)
	waitCompleted(t, skewed, n)
	skewHot, err := skewed.LoadSkew("sink")
	if err != nil {
		t.Fatal(err)
	}
	if skewHot < 3.5 { // all load on 1 of 4 executors -> skew 4
		t.Errorf("hot-key skew = %.2f, want ~4", skewHot)
	}
	if _, err := skewed.LoadSkew("nope"); err == nil {
		t.Error("unknown bolt should error")
	}
}
