module github.com/drs-repro/drs

go 1.22
