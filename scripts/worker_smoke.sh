#!/usr/bin/env sh
# worker_smoke.sh — boot `drsctl serve` with a worker registration
# endpoint, attach two real `drsctl worker` processes, push a client burst
# through the HTTP front door, and kill -9 one worker mid-surge. Asserts
# the distributed invariants against live processes: both workers join
# before traffic opens (-min-workers), the kill surfaces as a machine
# death within the heartbeat lease, the engine self-heals the dead
# worker's executors back in-process, and no admitted record is lost —
# completions cover everything admitted at the door.
#
# Usage: scripts/worker_smoke.sh [http_port] [worker_port]
set -eu

PORT="${1:-17181}"
WPORT="${2:-17182}"
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
W1_PID=""
W2_PID=""
cleanup() {
  kill "$W1_PID" 2>/dev/null || true
  kill "$W2_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

cat > "$TMP/topo.json" <<'EOF'
{
  "operators": [
    {"name": "extract", "service_rate": 50, "external_rate": 20},
    {"name": "match", "service_rate": 50}
  ],
  "edges": [
    {"from": "extract", "to": "match", "selectivity": 1.0}
  ]
}
EOF

go build -o "$TMP/drsctl" ./cmd/drsctl
go build -o "$TMP/ingestload" ./internal/tools/ingestload

# Serve for 16 s; the ingest listeners stay shut until both workers join.
"$TMP/drsctl" -topology "$TMP/topo.json" serve \
  -tmax-ms 250 -http "127.0.0.1:$PORT" -duration 16 \
  -worker-listen "127.0.0.1:$WPORT" -min-workers 2 \
  -client-rate 40 -slots 2 -max-machines 4 > "$TMP/serve.out" 2>&1 &
SERVE_PID=$!

"$TMP/drsctl" -topology "$TMP/topo.json" worker \
  -connect "127.0.0.1:$WPORT" -name smoke-w1 > "$TMP/w1.out" 2>&1 &
W1_PID=$!
"$TMP/drsctl" -topology "$TMP/topo.json" worker \
  -connect "127.0.0.1:$WPORT" -name smoke-w2 > "$TMP/w2.out" 2>&1 &
W2_PID=$!

# Wait for the front door — it only opens once both workers registered.
i=0
until "$TMP/ingestload" -url "http://127.0.0.1:$PORT/ingest" -clients 1 -rate 1 -duration 0.2 \
      > /dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 60 ]; then
    echo "serve never came up:" && cat "$TMP/serve.out" "$TMP/w1.out" "$TMP/w2.out"
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.25
done

# The surge, with a hard worker kill two seconds in.
"$TMP/ingestload" -url "http://127.0.0.1:$PORT/ingest" \
  -clients 4 -rate 120 -duration 6 > "$TMP/load.out" &
LOAD_PID=$!
sleep 2
kill -9 "$W1_PID"
W1_PID=""
wait "$LOAD_PID"
cat "$TMP/load.out"

wait "$SERVE_PID"
echo "--- serve report ---"
cat "$TMP/serve.out"

JOINS=$(grep -c 'worker tier: machine .* joined' "$TMP/serve.out" || true)
if [ "$JOINS" -lt 2 ]; then
  echo "smoke FAILED: expected 2 worker joins, saw $JOINS"
  exit 1
fi
if ! grep -q 'died, executors heal local' "$TMP/serve.out"; then
  echo "smoke FAILED: the kill -9 never surfaced as a worker death"
  exit 1
fi
if ! grep -q 'registered as machine' "$TMP/w1.out"; then
  echo "smoke FAILED: worker 1 never registered" && cat "$TMP/w1.out"
  exit 1
fi
ADMITTED=$(awk '{print $4}' "$TMP/load.out")
if [ "$ADMITTED" -le 0 ]; then
  echo "smoke FAILED: no records admitted through the front door"
  exit 1
fi
DOOR=$(awk -F'admitted | \\(shed' '/^ingest: offered/ {print $2}' "$TMP/serve.out")
COMPLETIONS=$(awk '/^engine: / {print $2}' "$TMP/serve.out")
if [ -z "$DOOR" ] || [ -z "$COMPLETIONS" ]; then
  echo "smoke FAILED: could not parse the serve report"
  exit 1
fi
if [ "$COMPLETIONS" -lt "$DOOR" ]; then
  echo "smoke FAILED: $DOOR admitted but only $COMPLETIONS completed — records lost in the kill"
  exit 1
fi
echo "worker-smoke OK: 2 workers joined, kill -9 healed, $DOOR admitted / $COMPLETIONS completed"
