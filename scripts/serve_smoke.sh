#!/usr/bin/env sh
# serve_smoke.sh — boot `drsctl serve` on a loopback port, push a burst of
# client traffic through the HTTP front door, and assert the gate produced
# a 2xx/429 split: some records admitted into the live engine, some shed
# with explicit backpressure (the per-client token bucket guarantees 429s
# once the burst exceeds the configured client rate).
#
# Usage: scripts/serve_smoke.sh [port]
set -eu

PORT="${1:-17171}"
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/topo.json" <<'EOF'
{
  "operators": [
    {"name": "extract", "service_rate": 50, "external_rate": 20},
    {"name": "match", "service_rate": 50}
  ],
  "edges": [
    {"from": "extract", "to": "match", "selectivity": 1.0}
  ]
}
EOF

go build -o "$TMP/drsctl" ./cmd/drsctl
go build -o "$TMP/ingestload" ./internal/tools/ingestload

# Serve for 14 s with a 40 rec/s per-client budget; the burst below pushes
# 120 rec/s per client, so 429s are guaranteed alongside the admitted share.
"$TMP/drsctl" -topology "$TMP/topo.json" serve \
  -tmax-ms 250 -http "127.0.0.1:$PORT" -duration 14 \
  -client-rate 40 -slots 2 -max-machines 4 > "$TMP/serve.out" 2>&1 &
SERVE_PID=$!

# Wait for the listener to come up.
i=0
until "$TMP/ingestload" -url "http://127.0.0.1:$PORT/ingest" -clients 1 -rate 1 -duration 0.2 \
      > /dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 40 ]; then
    echo "serve never came up:" && cat "$TMP/serve.out"
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.25
done

"$TMP/ingestload" -url "http://127.0.0.1:$PORT/ingest" \
  -clients 4 -rate 120 -duration 6 > "$TMP/load.out"
cat "$TMP/load.out"

wait "$SERVE_PID"
echo "--- serve report ---"
cat "$TMP/serve.out"

ADMITTED=$(awk '{print $4}' "$TMP/load.out")
SHED=$(awk '{print $6}' "$TMP/load.out")
if [ "$ADMITTED" -le 0 ]; then
  echo "smoke FAILED: no records admitted (no 2xx)"
  exit 1
fi
if [ "$SHED" -le 0 ]; then
  echo "smoke FAILED: no records shed (no 429)"
  exit 1
fi
echo "serve-smoke OK: $ADMITTED admitted (2xx) / $SHED shed (429)"
