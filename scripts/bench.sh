#!/usr/bin/env sh
# bench.sh — run the hot-path benchmarks and emit BENCH_<n>.json, seeding
# the repository's perf trajectory (ns/op, B/op, allocs/op per benchmark).
#
# Usage: scripts/bench.sh [PR-number] [benchtime]
#   PR-number  suffix for the output file (default 4 -> BENCH_4.json)
#   benchtime  passed to -benchtime (default 2s)
#
# The benchmark set covers the data plane end to end — the live engine
# (BenchmarkEngineThroughput), the DES simulator (BenchmarkSimThroughput),
# a full controlled experiment (BenchmarkFig9VLD) — plus the control
# plane: one control round (BenchmarkSupervisorTick), one multi-tenant
# arbitration (BenchmarkSchedulerArbitration) and one degraded-pool
# arbitration with a machine down (BenchmarkSchedulerFailover).
set -eu

PR="${1:-4}"
BENCHTIME="${2:-2s}"
OUT="BENCH_${PR}.json"
PATTERN='BenchmarkEngineThroughput|BenchmarkSimThroughput|BenchmarkFig9VLD$|BenchmarkSupervisorTick|BenchmarkSchedulerArbitration|BenchmarkSchedulerFailover'

cd "$(dirname "$0")/.."

RAW="$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" .)"
echo "$RAW"

echo "$RAW" | awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)      # strip -GOMAXPROCS suffix
    iters = $2
    nsop = ""; bop = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    rows[++n] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                        name, iters, nsop, bop, allocs)
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    for (i = 1; i <= n; i++)
        printf "%s%s\n", rows[i], (i < n ? "," : "") >> out
    printf "  ]\n}\n" >> out
}
'

echo "wrote $OUT"
