#!/usr/bin/env sh
# bench.sh — run the hot-path benchmarks and emit BENCH_<n>.json, seeding
# the repository's perf trajectory (ns/op, B/op, allocs/op per benchmark).
#
# Usage: scripts/bench.sh [PR-number] [benchtime]
#   PR-number  suffix for the output file; when omitted (or empty) it is
#              derived from the repository's perf trajectory — the highest
#              existing BENCH_<n>.json plus one
#   benchtime  passed to -benchtime (default 2s)
#
# The benchmark set covers the data plane end to end — the live engine
# (BenchmarkEngineThroughput), the ingest front door's decode → admit →
# ring → spout hot path (BenchmarkIngest), the DES simulator
# (BenchmarkSimThroughput), a full controlled experiment
# (BenchmarkFig9VLD) — plus the control plane: one control round
# (BenchmarkSupervisorTick), one multi-tenant arbitration
# (BenchmarkSchedulerArbitration), one degraded-pool arbitration with a
# machine down (BenchmarkSchedulerFailover) and the sharded client
# registry at a million token buckets (BenchmarkBucketShard — the
# millions-of-users admission path), the group-commit WAL's amortized
# per-record append at batch 64 (BenchmarkWALAppend — the durable admit
# ACK path), the decision log's emit/encode paths (BenchmarkDecisionLog)
# with "Logged" twins of the tick/arbitration/admit benchmarks pricing
# observability on vs off, the per-tuple tracer's copy-in/sampling/encode
# hot paths (BenchmarkTraceSpan) with "Traced" twins pricing tracing on
# the engine and admit paths, and a full /metrics render over a
# serve-sized registry (BenchmarkMetricsScrape).
#
# Rows are grouped so a benchmark's Logged/Traced twins sit directly
# under their base row regardless of run order — diffing a trajectory
# point against its predecessor keeps every on/off pair adjacent.
set -eu

cd "$(dirname "$0")/.."

PR="${1:-}"
if [ -z "$PR" ]; then
    # Next point on the trajectory: highest BENCH_<n>.json + 1.
    LAST=$(ls BENCH_*.json 2>/dev/null | sed 's/^BENCH_\([0-9][0-9]*\)\.json$/\1/' | sort -n | tail -1)
    PR=$(( ${LAST:-0} + 1 ))
fi
BENCHTIME="${2:-2s}"
OUT="BENCH_${PR}.json"
PATTERN='BenchmarkEngineThroughput|BenchmarkIngest|BenchmarkSimThroughput|BenchmarkFig9VLD$|BenchmarkSupervisorTick|BenchmarkSchedulerArbitration|BenchmarkSchedulerFailover|BenchmarkBucketShard|BenchmarkWALAppend|BenchmarkDecisionLog|BenchmarkTraceSpan|BenchmarkMetricsScrape'

RAW="$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" .)"
echo "$RAW"

echo "$RAW" | awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)      # strip -GOMAXPROCS suffix
    iters = $2
    nsop = ""; bop = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    # Group twins with their base: the group key strips the Logged/Traced
    # twin suffixes, groups keep first-appearance order, rows keep run
    # order within a group (the base always runs before its twins).
    base = name
    sub(/Logged$/, "", base); sub(/Traced$/, "", base)
    sub(/-logged$/, "", base); sub(/-traced$/, "", base)
    if (!(base in gidx)) gidx[base] = ++groups
    gi = gidx[base]
    rows[gi, ++gn[gi]] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                                 name, iters, nsop, bop, allocs)
    total++
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    k = 0
    for (i = 1; i <= groups; i++)
        for (j = 1; j <= gn[i]; j++) {
            k++
            printf "%s%s\n", rows[i, j], (k < total ? "," : "") >> out
        }
    printf "  ]\n}\n" >> out
}
'

echo "wrote $OUT"
