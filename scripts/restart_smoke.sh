#!/usr/bin/env sh
# restart_smoke.sh — the kill -9 golden experiment against a real process:
# boot `drsctl serve` with a WAL, push a client burst through the HTTP
# front door, kill -9 the process before it can sync a completion
# watermark, restart it over the same WAL directory and assert zero
# admitted loss: every ACKed record is in the recovered log (tail seq ==
# admitted), recovery replays exactly the records past the durable
# watermark, and the second life completes them all (final watermark ==
# tail seq).
#
# Usage: scripts/restart_smoke.sh [port]
set -eu

PORT="${1:-17181}"
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/topo.json" <<'EOF'
{
  "operators": [
    {"name": "extract", "service_rate": 50, "external_rate": 20},
    {"name": "match", "service_rate": 50}
  ],
  "edges": [
    {"from": "extract", "to": "match", "selectivity": 1.0}
  ]
}
EOF

go build -o "$TMP/drsctl" ./cmd/drsctl
go build -o "$TMP/ingestload" ./internal/tools/ingestload

# Life 1: a long watermark-sync interval (10 s) guarantees the kill lands
# before the first durable sync — everything admitted is still "unacked"
# in the log, the worst case recovery must handle.
"$TMP/drsctl" -topology "$TMP/topo.json" serve \
  -tmax-ms 250 -http "127.0.0.1:$PORT" -duration 60 -interval-ms 10000 \
  -wal-dir "$TMP/wal" -slots 2 -max-machines 4 > "$TMP/serve1.out" 2>&1 &
SERVE_PID=$!

i=0
until "$TMP/ingestload" -url "http://127.0.0.1:$PORT/ingest" -clients 1 -rate 1 -duration 0.2 \
      > /dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 40 ]; then
    echo "serve never came up:" && cat "$TMP/serve1.out"
    kill -9 "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.25
done

"$TMP/ingestload" -url "http://127.0.0.1:$PORT/ingest" \
  -clients 2 -rate 50 -duration 3 > "$TMP/load.out"
cat "$TMP/load.out"
ADMITTED=$(awk '{print $4}' "$TMP/load.out")
if [ "$ADMITTED" -le 0 ]; then
  echo "restart-smoke FAILED: nothing admitted before the kill"
  exit 1
fi

# kill -9 mid-ingest: no drain, no final sync, no checkpoint.
kill -9 "$SERVE_PID" 2>/dev/null
wait "$SERVE_PID" 2>/dev/null || true
echo "killed -9 with $ADMITTED records ACKed"

# Life 2: restart over the same WAL directory; recovery + replay, then a
# short serve that drains the replayed backlog and syncs on shutdown.
"$TMP/drsctl" -topology "$TMP/topo.json" serve \
  -tmax-ms 250 -http "127.0.0.1:$PORT" -duration 6 -interval-ms 500 \
  -wal-dir "$TMP/wal" -slots 2 -max-machines 4 > "$TMP/serve2.out" 2>&1
echo "--- restarted serve report ---"
cat "$TMP/serve2.out"

RECOVERED_TAIL=$(sed -n 's/^wal: recovered .* tail seq \([0-9]*\),.*/\1/p' "$TMP/serve2.out")
RECOVERED_WM=$(sed -n 's/^wal: recovered .* watermark \([0-9]*\) .*/\1/p' "$TMP/serve2.out")
REPLAYED=$(sed -n 's/^wal: replaying \([0-9]*\) unacked.*/\1/p' "$TMP/serve2.out")
FINAL_WM=$(sed -n 's/^wal: tail seq [0-9]*, watermark \([0-9]*\),.*/\1/p' "$TMP/serve2.out")
FINAL_TAIL=$(sed -n 's/^wal: tail seq \([0-9]*\),.*/\1/p' "$TMP/serve2.out")
for v in "$RECOVERED_TAIL" "$RECOVERED_WM" "$REPLAYED" "$FINAL_WM" "$FINAL_TAIL"; do
  if [ -z "$v" ]; then
    echo "restart-smoke FAILED: could not parse the WAL lines from the serve report"
    exit 1
  fi
done

# Zero admitted loss: every counted ACK made it into the log (the
# wait-for-listener probe admits a few extra records, so >=)...
if [ "$RECOVERED_TAIL" -lt "$ADMITTED" ]; then
  echo "restart-smoke FAILED: $ADMITTED records ACKed but log tail is only $RECOVERED_TAIL"
  exit 1
fi
# ...recovery replays exactly the ones past the durable watermark...
if [ "$REPLAYED" -ne $((RECOVERED_TAIL - RECOVERED_WM)) ]; then
  echo "restart-smoke FAILED: replayed $REPLAYED, want $RECOVERED_TAIL - $RECOVERED_WM"
  exit 1
fi
# ...and the second life completes every last one (books balance).
if [ "$FINAL_WM" -ne "$FINAL_TAIL" ]; then
  echo "restart-smoke FAILED: final watermark $FINAL_WM != tail seq $FINAL_TAIL (records lost)"
  exit 1
fi
echo "restart-smoke OK: $ADMITTED ACKed, $REPLAYED replayed after kill -9, watermark converged to $FINAL_WM"
